// Extension ablation: 1F1B versus GPipe (2.2).
//
// The paper adopts 1F1B because it has the same theoretical latency as
// GPipe but lower peak memory. This ablation verifies both properties on
// compiled GPT pipelines: latencies match, and GPipe's peak memory grows
// with the number of microbatches while 1F1B's is bounded by the stage
// count.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/models/gpt.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  InitBench(ParseBenchFlags(argc, argv));
  std::printf("=== Ablation: 1F1B vs GPipe (GPT, 4 stages on 8 GPUs) ===\n");
  std::printf("%4s | %12s %12s | %14s %14s\n", "B", "1f1b lat(s)", "gpipe lat(s)",
              "1f1b mem(GB)", "gpipe mem(GB)");

  for (int microbatches : {4, 8, 16, 32, 64}) {
    GptConfig config;
    config.hidden = 2048;
    config.num_layers = 16;
    config.num_heads = 32;
    config.microbatch = 8;

    auto run = [&](PipelineScheduleType schedule) {
      Graph graph = BuildGpt(config);
      ParallelizeOptions options = BaselineOptionTemplate();
      options.inter.num_microbatches = microbatches;
      options.schedule = schedule;
      options.inter.target_layers = 8;
      // Fix the stage structure so the comparison isolates the schedule.
      options.inter.submesh_shapes = {SubmeshShape{1, 2}};
      options.inter.dp.device_memory_override = 1e15;
      return CompileAndSimulate(graph, ClusterFor(8), options);
    };
    const StatusOr<ExecutionStats> one_f = run(PipelineScheduleType::k1F1B);
    const StatusOr<ExecutionStats> gpipe = run(PipelineScheduleType::kGpipe);
    // An OOM schedule surfaces as kResourceExhausted; print the paper's
    // "oom" cell for it instead of numbers.
    const auto cell = [](const StatusOr<ExecutionStats>& s, bool memory) -> std::string {
      if (!s.ok()) {
        return s.status().code() == StatusCode::kResourceExhausted ? "oom" : "-";
      }
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), memory ? "%.2f" : "%.3f",
                    memory ? s->peak_memory_bytes / 1e9 : s->latency);
      return buffer;
    };
    std::printf("%4d | %12s %12s | %14s %14s\n", microbatches, cell(one_f, false).c_str(),
                cell(gpipe, false).c_str(), cell(one_f, true).c_str(),
                cell(gpipe, true).c_str());
    std::fflush(stdout);
  }
  return 0;
}
