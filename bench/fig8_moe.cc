// Figure 8b: end-to-end weak scaling on GShard MoE (Table 6).
//
// Expected shape: DeepSpeed (expert parallelism + ZeRO, intra-op only)
// performs well within one node (<= 8 GPUs) and collapses across nodes;
// Alpa pipelines across nodes and keeps scaling — the paper reports 3.5x
// at 2 nodes and 9.7x at 4 nodes. "Inter-op only" eventually OOMs because
// stages cannot be balanced when #GPUs exceeds #layers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/models/moe.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  InitBench(flags);
  const std::unique_ptr<serve::PlanService> service = MakePlanService(flags);
  std::printf("=== Figure 8b: MoE weak scaling (aggregate PFLOPS, alpa via %s) ===\n",
              service->name().c_str());
  std::printf("%-10s %6s | %10s %12s %12s %12s | %8s\n", "model", "#gpus", "alpa", "deepspeed",
              "intra-only", "inter-only", "speedup");

  for (const MoeBenchmarkCase& bench_case : MoePaperCases()) {
    MoeConfig config = bench_case.config;
    config.microbatch = 8;
    const int num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    const int layers = static_cast<int>(config.num_layers);

    const StatusOr<ExecutionStats> alpa = service->CompileAndSimulate(
        AlpaRequest(flags, BuildMoe(config), cluster, num_microbatches, layers));
    const StatusOr<ExecutionStats> deepspeed =
        RunDeepSpeedMoe(BuildMoe(config), cluster, num_microbatches).stats;
    const StatusOr<ExecutionStats> intra =
        RunIntraOnly(BuildMoe(config), cluster, num_microbatches).stats;
    const StatusOr<ExecutionStats> inter =
        RunInterOnly(BuildMoe(config), cluster, num_microbatches, layers).stats;

    char speedup[32] = "-";
    if (alpa.ok() && deepspeed.ok()) {
      std::snprintf(speedup, sizeof(speedup), "%.2fx", deepspeed->latency / alpa->latency);
    }
    std::printf("%-10s %6d | %10s %12s %12s %12s | %8s\n", bench_case.name.c_str(),
                bench_case.num_gpus, Cell(alpa).c_str(), Cell(deepspeed).c_str(),
                Cell(intra).c_str(), Cell(inter).c_str(), speedup);
    std::fflush(stdout);
  }
  return 0;
}
