// Goodput under failures (the fault-injection counterpart of Fig. 8).
//
// Part 1 sweeps host failure rates against the Fig. 8 GPT configurations:
// each recovery costs detection + recompile + checkpoint restore + half a
// checkpoint interval of lost work, so the retained goodput falls as
// failures become more frequent (strictly decreasing in the rate).
//
// Part 2 replays one concrete incident end to end on a two-host cluster:
// a device dies mid-iteration (simulator reports detection time and wasted
// work), then RepairPlan() recompiles for the surviving host against the
// warm process-wide ILP cache and prices the recovery.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/models/gpt.h"
#include "src/runtime/simulator.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  InitBench(flags);
  // All compiles and repairs in this bench go through the PlanService API
  // (in-process, or an alpa_serve daemon with --server).
  const std::unique_ptr<serve::PlanService> service = MakePlanService(flags);
  JsonReport report("fault_tolerance");

  std::printf("=== Goodput vs failure rate (GPT configs, recoverable host loss) ===\n");
  std::printf("%-10s %6s | %12s %10s %14s %14s\n", "model", "#gpus", "failures/day",
              "goodput", "pflops", "healthy pflops");
  const double kFailuresPerDay[] = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  for (const GptBenchmarkCase& bench_case : GptPaperCases()) {
    if (bench_case.num_gpus > 8) {
      continue;  // Keep the sweep cheap; the model is size-independent.
    }
    GptConfig config = bench_case.config;
    config.microbatch = 8;
    const int num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    const int layers = bench_case.num_gpus >= 8 ? 16 : 8;

    ParallelPlan plan;
    const StatusOr<ExecutionStats> healthy = service->CompileAndSimulate(
        AlpaRequest(flags, BuildGpt(config), cluster, num_microbatches, layers), &plan);
    if (!healthy.ok()) {
      std::printf("%-10s %6d | %s\n", bench_case.name.c_str(), bench_case.num_gpus,
                  healthy.status().ToString().c_str());
      continue;
    }
    // One recovery: notice the failure, recompile (measured on this
    // machine), reload the last checkpoint, redo the lost half-interval.
    MtbfModel mtbf;
    const double downtime = cluster.faults.detection_timeout +
                            plan.compile_stats.total_seconds +
                            mtbf.checkpoint_restore_seconds +
                            0.5 * mtbf.checkpoint_interval_seconds;
    for (const double rate : kFailuresPerDay) {
      const double mtbf_seconds = rate > 0.0 ? 86400.0 / rate : 0.0;
      const double goodput =
          mtbf_seconds > 0.0 ? mtbf_seconds / (mtbf_seconds + downtime) : 1.0;
      std::printf("%-10s %6d | %12.1f %9.1f%% %14.3f %14.3f\n", bench_case.name.c_str(),
                  bench_case.num_gpus, rate, goodput * 100.0, healthy->pflops * goodput,
                  healthy->pflops);
      report.AddRow()
          .Str("section", "goodput_sweep")
          .Str("model", bench_case.name)
          .Int("num_gpus", bench_case.num_gpus)
          .Num("failures_per_day", rate)
          .Num("mtbf_seconds", mtbf_seconds)
          .Num("downtime_seconds", downtime)
          .Num("goodput_fraction", goodput)
          .Num("goodput_pflops", healthy->pflops * goodput)
          .Stats(healthy);
    }
    std::fflush(stdout);
  }

  std::printf("\n=== Single-incident replay + plan repair (GPT-350M, 2x2 cluster) ===\n");
  {
    GptConfig config = GptPaperCases()[0].config;
    config.microbatch = 8;
    ClusterSpec cluster = ClusterSpec::AwsP3(2, 2);
    const serve::PlanRequest request =
        AlpaRequest(flags, BuildGpt(config), cluster, /*num_microbatches=*/16,
                    /*target_layers=*/8);

    // Healthy compile: establishes the baseline and warms the ILP cache.
    ParallelPlan plan;
    const StatusOr<ExecutionStats> healthy = service->CompileAndSimulate(request, &plan);
    if (!healthy.ok()) {
      std::printf("healthy compile failed: %s\n", healthy.status().ToString().c_str());
      report.Write(flags.json_path);
      return 1;
    }
    std::printf("healthy:   %s\n", healthy->ToString().c_str());

    // Replay: the last device (host 1) dies 40% into the iteration.
    PipelineSimInput faulty_input = plan.sim_input;
    faulty_input.faults.device_failures.push_back(
        DeviceFailure{cluster.num_devices() - 1, 0.4 * healthy->latency});
    const PipelineSimResult incident = SimulatePipeline(faulty_input);
    std::printf("incident:  %s\n", incident.ToString().c_str());

    // Repair: drop host 1, recompile on the warm cache, price the recovery.
    RepairOptions repair_options;
    repair_options.failed_host = 1;
    repair_options.mtbf.mtbf_seconds = 86400.0;
    const StatusOr<RepairResult> repair = service->Repair(request, repair_options);
    if (!repair.ok()) {
      std::printf("repair failed: %s\n", repair.status().ToString().c_str());
      report.Write(flags.json_path);
      return 1;
    }
    std::printf("repaired:  %s\n", repair->ToString().c_str());

    report.AddRow()
        .Str("section", "repair")
        .Str("model", GptPaperCases()[0].name)
        .Int("num_gpus", cluster.num_devices())
        .Bool("incident_failed", incident.failed)
        .Num("incident_detection_seconds", incident.detection_time)
        .Num("incident_wasted_seconds", incident.wasted_work_seconds)
        .Int("remaining_hosts", repair->shrunk_cluster.num_hosts)
        .Num("recompile_seconds", repair->recompile_seconds)
        .Int("ilp_cache_hits", repair->ilp_cache_hits)
        .Int("ilp_cache_misses", repair->ilp_cache_misses)
        .Num("expected_downtime_seconds", repair->expected_downtime_seconds)
        .Num("goodput_fraction", repair->goodput_fraction)
        .Num("goodput_pflops", repair->goodput_pflops)
        .Stats(StatusOr<ExecutionStats>(repair->stats));
  }

  report.Write(flags.json_path);
  return 0;
}
