// Figure 8c: end-to-end weak scaling on Wide-ResNet (Table 7).
//
// No manual plan exists for this heterogeneous model. Expected shape:
// Alpa keeps scaling (~80% linear at 32 GPUs in the paper); "PP-DP"
// (pipeline + pure data parallelism a la PipeDream/Dapple) and "inter-op
// only" OOM on the large configurations because they cannot partition
// weights; "intra-op only" degrades across nodes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/models/wide_resnet.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  InitBench(flags);
  const std::unique_ptr<serve::PlanService> service = MakePlanService(flags);
  std::printf("=== Figure 8c: Wide-ResNet weak scaling (aggregate PFLOPS, alpa via %s) ===\n",
              service->name().c_str());
  std::printf("%-14s %6s | %10s %12s %12s %12s\n", "model", "#gpus", "alpa", "pp-dp",
              "intra-only", "inter-only");

  for (const WideResNetBenchmarkCase& bench_case : WideResNetPaperCases()) {
    WideResNetConfig config = bench_case.config;
    config.microbatch = 24;
    const int num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    const int layers = 16;

    const StatusOr<ExecutionStats> alpa = service->CompileAndSimulate(
        AlpaRequest(flags, BuildWideResNet(config), cluster, num_microbatches, layers));
    const StatusOr<ExecutionStats> ppdp =
        RunPpDp(BuildWideResNet(config), cluster, num_microbatches, layers).stats;
    const StatusOr<ExecutionStats> intra =
        RunIntraOnly(BuildWideResNet(config), cluster, num_microbatches).stats;
    const StatusOr<ExecutionStats> inter =
        RunInterOnly(BuildWideResNet(config), cluster, num_microbatches, layers).stats;

    std::printf("%-14s %6d | %10s %12s %12s %12s\n", bench_case.name.c_str(),
                bench_case.num_gpus, Cell(alpa).c_str(), Cell(ppdp).c_str(),
                Cell(intra).c_str(), Cell(inter).c_str());
    std::fflush(stdout);
  }
  return 0;
}
