// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/baselines/baselines.h"
#include "src/core/api.h"

namespace alpa {
namespace bench {

// The paper's testbed topology: p3.16xlarge nodes of 8 V100s.
inline ClusterSpec ClusterFor(int num_gpus) {
  if (num_gpus <= 8) {
    return ClusterSpec::AwsP3(1, num_gpus);
  }
  return ClusterSpec::AwsP3(num_gpus / 8, 8);
}

// Formats a result cell: aggregate PFLOPS, or the paper's "x" for OOM /
// infeasible configurations.
inline std::string Cell(const ExecutionStats& stats) {
  if (!stats.feasible || stats.oom) {
    return "x";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", stats.pflops);
  return buffer;
}

// Keeps bench runtime bounded: smaller solver budget (quality loss is
// negligible thanks to the plan-family seeds). Call once at the top of a
// benchmark's main().
inline void TuneForBench() {
  BaselineOptionTemplate().inter.profiler.intra.solver.max_search_nodes = 60'000;
}

}  // namespace bench
}  // namespace alpa

#endif  // BENCH_BENCH_UTIL_H_
