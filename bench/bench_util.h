// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/api.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

namespace alpa {
namespace bench {

// The paper's testbed topology: p3.16xlarge nodes of 8 V100s.
inline ClusterSpec ClusterFor(int num_gpus) {
  if (num_gpus <= 8) {
    return ClusterSpec::AwsP3(1, num_gpus);
  }
  return ClusterSpec::AwsP3(num_gpus / 8, 8);
}

// Formats a result cell: aggregate PFLOPS, or the paper's "x" for OOM /
// infeasible configurations.
inline std::string Cell(const StatusOr<ExecutionStats>& stats) {
  if (!stats.ok()) {
    return "x";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", stats->pflops);
  return buffer;
}

// Command-line flags shared by every benchmark binary.
struct BenchFlags {
  // Compilation worker threads (1 = serial, 0 = hardware concurrency);
  // plans are bit-identical for any value.
  int threads = 1;
  // Non-empty: write the unified compile+execute Chrome trace here.
  std::string trace_path;
  // Non-empty: write machine-readable results (JSON) here for CI trend
  // tracking, alongside the human-readable table on stdout.
  std::string json_path;
  // Non-empty: route the Alpa compile lanes through an alpa_serve daemon
  // listening on this unix socket instead of compiling in-process.
  // Baseline lanes (Megatron grids, plan-space filters) always run
  // in-process — their filter closures cannot cross the wire.
  std::string server;
};

// Parses `--threads N` / `--threads=N`, `--trace PATH` / `--trace=PATH`,
// `--json PATH` / `--json=PATH`, and `--server SOCKET` / `--server=SOCKET`.
inline BenchFlags ParseBenchFlags(int argc, char** argv, int default_threads = 1) {
  BenchFlags flags;
  flags.threads = default_threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      flags.threads = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      flags.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      flags.trace_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      flags.trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      flags.json_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      flags.json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      flags.server = argv[i + 1];
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      flags.server = argv[i] + 9;
    }
  }
  return flags;
}

// Accumulates one JSON object per benchmark configuration and writes
//   {"benchmark": "<name>", "results": [{...}, ...]}
// Values are rendered as they are added; non-finite doubles become null
// (JSON has no Infinity/NaN).
class JsonReport {
 public:
  explicit JsonReport(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  class Row {
   public:
    Row& Num(const char* key, double value) {
      if (!std::isfinite(value)) {
        return Raw(key, "null");
      }
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      return Raw(key, buffer);
    }
    Row& Int(const char* key, long long value) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%lld", value);
      return Raw(key, buffer);
    }
    Row& Bool(const char* key, bool value) { return Raw(key, value ? "true" : "false"); }
    Row& Str(const char* key, const std::string& value) {
      std::string quoted = "\"";
      for (char c : value) {
        if (c == '"' || c == '\\') {
          quoted += '\\';
        }
        quoted += c;
      }
      quoted += '"';
      return Raw(key, quoted.c_str());
    }
    // The standard result columns: ok + latency/pflops/bubble/peak bytes
    // (null columns when the configuration failed, plus the error text).
    Row& Stats(const StatusOr<ExecutionStats>& stats) {
      Bool("ok", stats.ok());
      if (!stats.ok()) {
        return Str("error", stats.status().ToString());
      }
      return Num("latency_seconds", stats->latency)
          .Num("pflops", stats->pflops)
          .Num("bubble_fraction", stats->bubble_fraction)
          .Num("peak_memory_bytes", stats->peak_memory_bytes);
    }

    std::string json() const { return "{" + fields_ + "}"; }

   private:
    Row& Raw(const char* key, const char* rendered) {
      if (!fields_.empty()) {
        fields_ += ",";
      }
      fields_ += "\"";
      fields_ += key;
      fields_ += "\":";
      fields_ += rendered;
      return *this;
    }
    std::string fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Writes the report; no-op when `path` is empty. Returns false (with a
  // message on stderr) when the file cannot be written.
  bool Write(const std::string& path) const {
    if (path.empty()) {
      return true;
    }
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
      return false;
    }
    std::fprintf(file, "{\"benchmark\":\"%s\",\"results\":[", benchmark_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(file, "%s%s", i == 0 ? "" : ",", rows_[i].json().c_str());
    }
    std::fprintf(file, "]}\n");
    std::fclose(file);
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<Row> rows_;
};

// The bounded ILP search budget every bench lane compiles under (quality
// loss is negligible thanks to the plan-family seeds).
inline constexpr int64_t kBenchSearchBudget = 60'000;

// Configures the shared BaselineOptionTemplate through the options builder:
// the bench search budget, the requested worker threads, and optional
// tracing. Call once at the top of a benchmark's main().
inline void InitBench(const BenchFlags& flags) {
  BaselineOptionTemplate() = ParallelizeOptions::Builder()
                                 .search_budget(kBenchSearchBudget)
                                 .threads(flags.threads)
                                 .trace(flags.trace_path)
                                 .Build();
}

// The PlanService the Alpa lanes run through: in-process by default, a
// RemotePlanService against an alpa_serve daemon when --server was given.
inline std::unique_ptr<serve::PlanService> MakePlanService(const BenchFlags& flags) {
  if (!flags.server.empty()) {
    return std::make_unique<serve::RemotePlanService>(flags.server);
  }
  return std::make_unique<serve::InProcessPlanService>();
}

// The service-API form of the options InitBench bakes into the baseline
// template; the Alpa lane of a bench is
//   service->CompileAndSimulate(AlpaRequest(flags, graph, cluster, mb, L))
// and behaves identically in-process and against a daemon.
inline serve::PlanRequest AlpaRequest(const BenchFlags& flags, Graph graph,
                                      const ClusterSpec& cluster, int num_microbatches,
                                      int target_layers) {
  serve::PlanRequest request;
  request.graph = std::move(graph);
  request.cluster = cluster;
  request.options.num_microbatches = num_microbatches;
  request.options.target_layers = target_layers;
  request.options.max_search_nodes = kBenchSearchBudget;
  request.options.tenant = "bench";
  request.options.compile_threads = flags.threads;
  request.options.trace_path = flags.trace_path;
  return request;
}

}  // namespace bench
}  // namespace alpa

#endif  // BENCH_BENCH_UTIL_H_
