// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/baselines/baselines.h"
#include "src/core/api.h"

namespace alpa {
namespace bench {

// The paper's testbed topology: p3.16xlarge nodes of 8 V100s.
inline ClusterSpec ClusterFor(int num_gpus) {
  if (num_gpus <= 8) {
    return ClusterSpec::AwsP3(1, num_gpus);
  }
  return ClusterSpec::AwsP3(num_gpus / 8, 8);
}

// Formats a result cell: aggregate PFLOPS, or the paper's "x" for OOM /
// infeasible configurations.
inline std::string Cell(const StatusOr<ExecutionStats>& stats) {
  if (!stats.ok()) {
    return "x";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", stats->pflops);
  return buffer;
}

// Command-line flags shared by every benchmark binary.
struct BenchFlags {
  // Compilation worker threads (1 = serial, 0 = hardware concurrency);
  // plans are bit-identical for any value.
  int threads = 1;
  // Non-empty: write the unified compile+execute Chrome trace here.
  std::string trace_path;
};

// Parses `--threads N` / `--threads=N` and `--trace PATH` / `--trace=PATH`.
inline BenchFlags ParseBenchFlags(int argc, char** argv, int default_threads = 1) {
  BenchFlags flags;
  flags.threads = default_threads;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      flags.threads = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      flags.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      flags.trace_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      flags.trace_path = argv[i] + 8;
    }
  }
  return flags;
}

// Configures the shared BaselineOptionTemplate through the options builder:
// a bounded ILP search budget (quality loss is negligible thanks to the
// plan-family seeds), the requested worker threads, and optional tracing.
// Call once at the top of a benchmark's main().
inline void InitBench(const BenchFlags& flags) {
  BaselineOptionTemplate() = ParallelizeOptions::Builder()
                                 .search_budget(60'000)
                                 .threads(flags.threads)
                                 .trace(flags.trace_path)
                                 .Build();
}

}  // namespace bench
}  // namespace alpa

#endif  // BENCH_BENCH_UTIL_H_
