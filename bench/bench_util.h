// Shared helpers for the paper-reproduction benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/baselines/baselines.h"
#include "src/core/api.h"

namespace alpa {
namespace bench {

// The paper's testbed topology: p3.16xlarge nodes of 8 V100s.
inline ClusterSpec ClusterFor(int num_gpus) {
  if (num_gpus <= 8) {
    return ClusterSpec::AwsP3(1, num_gpus);
  }
  return ClusterSpec::AwsP3(num_gpus / 8, 8);
}

// Formats a result cell: aggregate PFLOPS, or the paper's "x" for OOM /
// infeasible configurations.
inline std::string Cell(const ExecutionStats& stats) {
  if (!stats.feasible || stats.oom) {
    return "x";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", stats.pflops);
  return buffer;
}

// Keeps bench runtime bounded: smaller solver budget (quality loss is
// negligible thanks to the plan-family seeds). Call once at the top of a
// benchmark's main(). `compile_threads` fans the compilation pipeline out
// across a worker pool (1 = serial, 0 = hardware concurrency); plans are
// bit-identical for any value.
inline void TuneForBench(int compile_threads = 1) {
  BaselineOptionTemplate().inter.profiler.intra.solver.max_search_nodes = 60'000;
  BaselineOptionTemplate().compile_threads = compile_threads;
}

// Parses `--threads N` / `--threads=N` from a benchmark's argv.
inline int ParseThreads(int argc, char** argv, int default_threads = 1) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return std::atoi(argv[i] + 10);
    }
  }
  return default_threads;
}

}  // namespace bench
}  // namespace alpa

#endif  // BENCH_BENCH_UTIL_H_
