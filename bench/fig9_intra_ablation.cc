// Figure 9: intra-op parallelism ablation on one node (7.2).
//
// Weak scaling in model size on 1..8 GPUs of a single node, pipeline and
// gradient accumulation disabled. Strategies: vanilla data parallelism,
// ZeRO-2, ZeRO-3, the GSPMD-style "Heuristic", and the ILP "Auto-sharding".
// Expected shape: "Data" OOMs first ("x"), ZeRO-2/3 fix memory but waste
// communication when gradients dominate, "Auto" is best everywhere.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"

namespace {

using namespace alpa;
using namespace alpa::bench;

void Header(const char* title) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%6s | %10s %10s %10s %10s %10s\n", "#gpus", "data", "zero-2", "zero-3",
              "heuristic", "auto");
}

template <typename BuildFn>
void Row(int gpus, BuildFn&& build) {
  const ClusterSpec cluster = ClusterFor(gpus);
  const StatusOr<ExecutionStats> data =
      RunSingleMesh(build(), cluster, "data", DataParallelFilter()).stats;
  const StatusOr<ExecutionStats> zero2 = RunSingleMesh(build(), cluster, "zero2", Zero2Filter()).stats;
  const StatusOr<ExecutionStats> zero3 = RunSingleMesh(build(), cluster, "zero3", Zero3Filter()).stats;
  const StatusOr<ExecutionStats> heuristic =
      RunSingleMesh(build(), cluster, "heuristic", HeuristicLargestDimFilter()).stats;
  const StatusOr<ExecutionStats> autos = RunSingleMesh(build(), cluster, "auto", nullptr).stats;
  std::printf("%6d | %10s %10s %10s %10s %10s\n", gpus, Cell(data).c_str(),
              Cell(zero2).c_str(), Cell(zero3).c_str(), Cell(heuristic).c_str(),
              Cell(autos).c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(ParseBenchFlags(argc, argv));
  std::printf("=== Figure 9: intra-op ablation, one node, no pipeline/GA (PFLOPS) ===\n");

  // 7.2: larger hidden sizes, smaller batches, fewer layers than 7.1, so
  // that a single node exercises the memory/communication trade-offs of
  // large-scale training.
  Header("GPT (a)");
  const int64_t gpt_hidden[] = {2048, 2560, 3328, 4096};
  const int gpt_gpus[] = {1, 2, 4, 8};
  for (int i = 0; i < 4; ++i) {
    Row(gpt_gpus[i], [&, i] {
      GptConfig config;
      config.hidden = gpt_hidden[i];
      config.num_layers = 10;
      config.num_heads = 32;
      config.microbatch = 8;
      config.seq_len = 1024;
      config.vocab = 25600;
      return BuildGpt(config);
    });
  }

  Header("MoE (b)");
  const int64_t moe_experts[] = {8, 16, 32, 64};
  const int64_t moe_hidden[] = {1024, 1024, 1280, 1280};
  for (int i = 0; i < 4; ++i) {
    Row(gpt_gpus[i], [&, i] {
      MoeConfig config;
      config.hidden = moe_hidden[i];
      config.num_layers = 8;
      config.num_heads = 16;
      config.num_experts = moe_experts[i];
      config.microbatch = 8;
      config.seq_len = 1024;
      config.vocab = 25600;
      return BuildMoe(config);
    });
  }

  Header("Wide-ResNet (c)");
  const int64_t wrn_base[] = {160, 224, 320, 448};
  for (int i = 0; i < 4; ++i) {
    Row(gpt_gpus[i], [&, i] {
      WideResNetConfig config;
      config.base_channels = wrn_base[i];
      config.width_factor = 2;
      config.microbatch = 32;
      return BuildWideResNet(config);
    });
  }
  return 0;
}
