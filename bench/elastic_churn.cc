// Goodput under a week of production churn: speculative vs reactive.
//
// The elastic runtime (src/elastic) replays a deterministic stream of
// Poisson host failures plus announced joins/drains against a live
// cluster, replanning at every mutation. This bench runs the SAME stream
// twice:
//
//   speculative — the background re-planner presolves the likely next
//     configurations after every replan, so failover is a warm cache hit
//     by construction (downtime = warm_replan, no cold compile in the
//     critical path);
//   reactive    — the RepairPlan-style baseline: recompile on demand when
//     churn strikes (previously-visited configs still count warm, as a
//     reactive runtime also keeps the plans it already paid for).
//
// Goodput (pflops-seconds over the horizon) must be strictly higher for
// the speculative lane; the bench exits non-zero otherwise, which is what
// the elastic_churn_smoke ctest entry enforces. A final section compiles
// a mixed-generation (V100+A100) cluster with heterogeneity-aware stage
// assignment on and off and reports the simulated iteration times.
//
//   elastic_churn [--smoke] [--json PATH] [--threads N]
//
// --smoke shrinks the horizon and the model for tier-1; the full run
// produces BENCH_elastic.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/elastic/elastic.h"
#include "src/models/gpt.h"

namespace {

using namespace alpa;
using namespace alpa::bench;

// Median of the measured failover walls of the epochs `warm` selects.
double MedianFailoverWall(const std::vector<elastic::ElasticEpoch>& epochs, bool warm) {
  std::vector<double> walls;
  for (const elastic::ElasticEpoch& epoch : epochs) {
    // Epoch 0 is the startup compile, not a failover.
    if (epoch.trigger != "start" && epoch.feasible && epoch.warm == warm) {
      walls.push_back(epoch.failover_wall_seconds);
    }
  }
  if (walls.empty()) {
    return 0.0;
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

int WarmEpochs(const std::vector<elastic::ElasticEpoch>& epochs, bool warm) {
  int n = 0;
  for (const elastic::ElasticEpoch& epoch : epochs) {
    if (epoch.trigger != "start" && epoch.warm == warm) {
      ++n;
    }
  }
  return n;
}

void ReportLane(JsonReport& report, const char* lane, const elastic::ElasticRunResult& run) {
  std::printf("%-12s %s\n", lane, run.ToString().c_str());
  report.AddRow()
      .Str("section", "churn_week")
      .Str("lane", lane)
      .Num("horizon_seconds", run.horizon_seconds)
      .Int("epochs", static_cast<long long>(run.epochs.size()))
      .Int("events_applied", run.events_applied)
      .Int("events_skipped", run.events_skipped)
      .Num("goodput_pflops_seconds", run.total_goodput_pflops_seconds)
      .Num("downtime_seconds", run.total_downtime_seconds)
      .Num("uptime_fraction", run.uptime_fraction)
      .Int("warm_failovers", WarmEpochs(run.epochs, true))
      .Int("cold_failovers", WarmEpochs(run.epochs, false))
      .Num("p50_warm_failover_wall_seconds", MedianFailoverWall(run.epochs, true))
      .Num("p50_cold_failover_wall_seconds", MedianFailoverWall(run.epochs, false))
      .Num("startup_compile_wall_seconds",
           run.epochs.empty() ? 0.0 : run.epochs.front().failover_wall_seconds)
      .Int("speculations", run.speculations)
      .Int("speculative_hits", run.speculative_hits)
      .Int("speculative_misses", run.speculative_misses)
      .Int("wasted_presolves", run.wasted_presolves)
      .Int("determinism_fingerprint",
           static_cast<long long>(run.DeterminismFingerprint()));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv, /*default_threads=*/2);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  InitBench(flags);
  JsonReport report("elastic_churn");

  GptConfig config = GptPaperCases()[0].config;
  config.microbatch = 8;
  const Graph graph = BuildGpt(config);
  const int num_microbatches = smoke ? 8 : 16;
  const int target_layers = smoke ? 4 : 8;
  const ClusterSpec initial = ClusterSpec::AwsP3(4, 2);

  const ParallelizeOptions options = ParallelizeOptions::Builder()
                                         .microbatches(num_microbatches)
                                         .target_layers(target_layers)
                                         .threads(flags.threads)
                                         .search_budget(kBenchSearchBudget)
                                         .Build();

  elastic::ElasticOptions elastic_options;
  elastic::ChurnOptions& churn = elastic_options.churn;
  churn.horizon_seconds = smoke ? 0.5 * 86400.0 : 7 * 86400.0;
  churn.host_mtbf_seconds = smoke ? 0.15 * 86400.0 : 2.5 * 86400.0;
  churn.seed = 0x5eedULL;
  // Announced maintenance: capacity replenished daily, one drain near the
  // end — the speculative lane presolves both ahead of time.
  const double day = 86400.0;
  if (smoke) {
    churn.scheduled.push_back(
        {0.2 * day, elastic::ChurnEventKind::kHostJoin, -1, initial.device});
    churn.scheduled.push_back({0.4 * day, elastic::ChurnEventKind::kHostDrain, 0, {}});
  } else {
    for (int d = 1; d <= 5; ++d) {
      churn.scheduled.push_back(
          {d * day, elastic::ChurnEventKind::kHostJoin, -1, initial.device});
    }
    churn.scheduled.push_back({6.5 * day, elastic::ChurnEventKind::kHostDrain, 0, {}});
  }
  elastic_options.speculation.k = 4;
  elastic_options.threads = flags.threads;

  std::printf("=== One %s of churn: speculative presolve vs reactive recompile ===\n",
              smoke ? "half-day (smoke)" : "week");

  // Reactive runs FIRST so its cold-compile wall times are genuinely cold
  // (the process-wide ILP memo is empty); the modeled goodput numbers are
  // order-independent either way.
  elastic_options.speculative = false;
  const StatusOr<elastic::ElasticRunResult> reactive =
      elastic::RunElasticLoop(graph, initial, options, elastic_options);
  if (!reactive.ok()) {
    std::printf("reactive lane failed: %s\n", reactive.status().ToString().c_str());
    return 1;
  }
  ReportLane(report, "reactive", *reactive);

  elastic_options.speculative = true;
  const StatusOr<elastic::ElasticRunResult> speculative =
      elastic::RunElasticLoop(graph, initial, options, elastic_options);
  if (!speculative.ok()) {
    std::printf("speculative lane failed: %s\n", speculative.status().ToString().c_str());
    return 1;
  }
  ReportLane(report, "speculative", *speculative);

  const double hit_rate =
      speculative->speculative_hits + speculative->speculative_misses > 0
          ? static_cast<double>(speculative->speculative_hits) /
                static_cast<double>(speculative->speculative_hits +
                                    speculative->speculative_misses)
          : 0.0;
  std::printf(
      "speculative hit-rate %.0f%%; p50 warm failover wall %.6fs vs cold compile %.3fs; "
      "goodput +%.2f%% over reactive\n",
      hit_rate * 100.0, MedianFailoverWall(speculative->epochs, true),
      reactive->epochs.front().failover_wall_seconds,
      reactive->total_goodput_pflops_seconds > 0.0
          ? 100.0 * (speculative->total_goodput_pflops_seconds /
                         reactive->total_goodput_pflops_seconds -
                     1.0)
          : 0.0);

  std::printf("\n=== Mixed-generation cluster: hetero-aware stage assignment ===\n");
  {
    const ClusterSpec mixed = ClusterSpec::MixedGeneration(
        /*num_base_hosts=*/2, /*num_fast_hosts=*/2, /*devices_per_host=*/2);
    // Fewer stages than devices, so stages span multiple same-shape
    // submeshes with UNEQUAL latencies — the configuration where matching
    // slow stages to fast meshes actually moves the pipeline bottleneck.
    const ParallelizeOptions hetero_base = ParallelizeOptions::Builder()
                                               .microbatches(8)
                                               .target_layers(4)
                                               .threads(flags.threads)
                                               .search_budget(kBenchSearchBudget)
                                               .Build();
    for (const bool aware : {true, false}) {
      ParallelizeOptions hetero_options = hetero_base;
      hetero_options.inter.hetero_aware = aware;
      Graph copy = graph;
      const StatusOr<ParallelPlan> plan = Parallelize(copy, mixed, hetero_options);
      StatusOr<ExecutionStats> stats = plan.ok()
                                           ? Simulate(*plan, graph, mixed)
                                           : StatusOr<ExecutionStats>(plan.status());
      std::printf("hetero_aware=%-5s %s\n", aware ? "true" : "false",
                  stats.ok() ? stats->ToString().c_str()
                             : stats.status().ToString().c_str());
      report.AddRow()
          .Str("section", "hetero_assignment")
          .Bool("hetero_aware", aware)
          .Int("base_hosts", 2)
          .Int("fast_hosts", 2)
          .Stats(stats);
    }
  }

  report.Write(flags.json_path);

  // The acceptance gate: speculation must strictly beat the reactive
  // baseline on the same churn stream.
  if (speculative->total_goodput_pflops_seconds <= reactive->total_goodput_pflops_seconds) {
    std::printf("FAIL: speculative goodput did not beat reactive\n");
    return 1;
  }
  std::printf("\nOK: speculative goodput beats reactive\n");
  return 0;
}
