// Figure 8a: end-to-end weak scaling on GPT-3 (Table 5 configurations).
//
// Reproduces the comparison of Alpa vs Megatron-LM vs intra-op-only vs
// inter-op-only, reporting aggregate PFLOPS per cluster size. Absolute
// numbers come from the analytical simulator; the qualitative shape to
// check against the paper: Alpa matches (or slightly beats) Megatron-LM,
// "inter-op only" stays close to linear, and "intra-op only" collapses
// beyond one node (>= 16 GPUs).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/models/gpt.h"

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  InitBench(flags);
  // The Alpa lane goes through the PlanService API (in-process, or an
  // alpa_serve daemon with --server); the baseline lanes stay in-process.
  const std::unique_ptr<serve::PlanService> service = MakePlanService(flags);
  JsonReport report("fig8_gpt");
  std::printf("=== Figure 8a: GPT weak scaling (aggregate PFLOPS, alpa via %s) ===\n",
              service->name().c_str());
  std::printf("%-10s %6s %8s | %10s %12s %12s %12s\n", "model", "#gpus", "batch", "alpa",
              "megatron", "intra-only", "inter-only");

  for (const GptBenchmarkCase& bench_case : GptPaperCases()) {
    GptConfig config = bench_case.config;
    config.microbatch = 8;
    const int num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    const int layers = bench_case.num_gpus >= 8 ? 16 : 8;

    auto run = [&](auto&& runner) {
      Graph graph = BuildGpt(config);
      return runner(std::move(graph));
    };
    const StatusOr<ExecutionStats> alpa = run([&](Graph g) {
      return service->CompileAndSimulate(
          AlpaRequest(flags, std::move(g), cluster, num_microbatches, layers));
    });
    const StatusOr<ExecutionStats> megatron = run([&](Graph g) {
      return RunMegatron(std::move(g), cluster, num_microbatches, layers).stats;
    });
    const StatusOr<ExecutionStats> intra = run([&](Graph g) {
      return RunIntraOnly(std::move(g), cluster, num_microbatches).stats;
    });
    const StatusOr<ExecutionStats> inter = run([&](Graph g) {
      return RunInterOnly(std::move(g), cluster, num_microbatches, layers).stats;
    });

    std::printf("%-10s %6d %8lld | %10s %12s %12s %12s\n", bench_case.name.c_str(),
                bench_case.num_gpus, static_cast<long long>(bench_case.global_batch),
                Cell(alpa).c_str(), Cell(megatron).c_str(), Cell(intra).c_str(),
                Cell(inter).c_str());
    std::fflush(stdout);
    const std::pair<const char*, const StatusOr<ExecutionStats>*> methods[] = {
        {"alpa", &alpa}, {"megatron", &megatron}, {"intra_only", &intra}, {"inter_only", &inter}};
    for (const auto& [method, stats] : methods) {
      report.AddRow()
          .Str("model", bench_case.name)
          .Int("num_gpus", bench_case.num_gpus)
          .Int("global_batch", bench_case.global_batch)
          .Str("method", method)
          .Stats(*stats);
    }
  }
  report.Write(flags.json_path);
  return 0;
}
