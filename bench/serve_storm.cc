// Plan-server request storm: throughput and latency of alpa_serve under
// concurrent multi-tenant load (the serving counterpart of compile_speed).
//
// Phases:
//   cold    — every distinct model compiled once through the daemon
//             (plan-cache misses; dominated by ILP time).
//   warm    — several client threads hammer the same model set; every
//             request is a plan-cache hit, so this measures the serving
//             stack itself (framing, scheduling, cache lookup).
//   restart — the daemon is torn down, the in-memory cache dropped, and a
//             fresh daemon answers from the disk cache (warm-across-
//             restart proof).
//
// `--dedup` adds two more phases (self-hosted only):
//   dedup   — N clients race a single cold key concurrently; single-flight
//             dedup must compile exactly once (asserted via the
//             serve/compiles metric) while every racer gets the plan.
//   sweep   — warm-storm throughput at 1/2/4 workers (plans/sec vs worker
//             count), restarting the daemon between points.
//
// Self-hosts a PlanServer on a temp socket by default; `--server SOCKET`
// points the storm at an external daemon instead (the restart, dedup and
// sweep phases are then skipped — we cannot restart someone else's daemon
// or read its metrics). `--smoke` shrinks the workload for the tier-1
// ctest entry; `--json` writes BENCH_serve.json.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/models/mlp.h"
#include "src/serve/client.h"
#include "src/serve/plan_cache.h"
#include "src/serve/server.h"
#include "src/support/trace.h"

namespace {

using namespace alpa;
using namespace alpa::bench;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One timed Parallelize round-trip through the daemon.
struct Sample {
  double seconds = 0.0;
  bool ok = false;
  bool cache_hit = false;
};

serve::ServeRequest StormRequest(int model_index, const std::string& tenant) {
  MlpConfig config;
  config.hidden_dims = {256 + 32 * model_index, 256};
  serve::ServeRequest request;
  request.method = serve::Method::kParallelize;
  request.graph = BuildMlp(config);
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  request.options.max_search_nodes = kBenchSearchBudget;
  request.options.tenant = tenant;
  return request;
}

Sample TimedCall(serve::RemotePlanService& client, const serve::ServeRequest& request) {
  Sample sample;
  const double start = NowSeconds();
  const StatusOr<serve::ServeResponse> response = client.Call(request);
  sample.seconds = NowSeconds() - start;
  sample.ok = response.ok() && response.value().ToStatus().ok();
  sample.cache_hit = response.ok() && response.value().plan_cache_hit;
  return sample;
}

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) {
    return 0.0;
  }
  std::sort(seconds.begin(), seconds.end());
  const size_t index = std::min(seconds.size() - 1,
                                static_cast<size_t>(p * static_cast<double>(seconds.size())));
  return seconds[index] * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseBenchFlags(argc, argv);
  bool smoke = false;
  bool dedup = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else if (std::string(argv[i]) == "--dedup") {
      dedup = true;
    }
  }
  const int kModels = smoke ? 4 : 12;
  const int kClients = smoke ? 2 : 4;
  const int kWarmRounds = smoke ? 2 : 8;

  JsonReport report("serve_storm");

  // Self-host a daemon unless --server points at a running one.
  const bool self_hosted = flags.server.empty();
  std::string socket_path = flags.server;
  std::string cache_dir;
  std::unique_ptr<serve::PlanServer> server;
  if (self_hosted) {
    const std::string tag = std::to_string(static_cast<long long>(::getpid()));
    socket_path = "/tmp/alpa_serve_storm_" + tag + ".sock";
    cache_dir = (std::filesystem::temp_directory_path() / ("alpa_serve_storm_cache_" + tag))
                    .string();
    serve::PlanCache::Global().Clear(/*also_disk=*/true);
    serve::ServerOptions options;
    options.socket_path = socket_path;
    options.num_workers = flags.threads > 1 ? flags.threads : 2;
    options.max_queue = 256;
    options.max_per_tenant = 64;
    options.plan_cache_dir = cache_dir;
    server = std::make_unique<serve::PlanServer>(options);
    const Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "serve_storm: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("=== Plan-server storm (%s, %d models, %d clients) ===\n",
              self_hosted ? "self-hosted daemon" : socket_path.c_str(), kModels, kClients);

  // --- Phase 1: cold compiles (one per distinct model). ---
  std::vector<double> cold_seconds;
  int cold_failures = 0;
  {
    serve::RemotePlanService client(socket_path);
    const double start = NowSeconds();
    for (int m = 0; m < kModels; ++m) {
      const Sample sample = TimedCall(client, StormRequest(m, "cold"));
      if (!sample.ok) {
        ++cold_failures;
        continue;
      }
      cold_seconds.push_back(sample.seconds);
    }
    const double wall = NowSeconds() - start;
    std::printf("cold:    %2d plans in %6.2f s (%6.2f plans/s, p50 %7.2f ms, p99 %7.2f ms)\n",
                kModels, wall, kModels / wall, PercentileMs(cold_seconds, 0.50),
                PercentileMs(cold_seconds, 0.99));
    report.AddRow()
        .Str("phase", "cold")
        .Int("requests", kModels)
        .Int("failures", cold_failures)
        .Num("wall_seconds", wall)
        .Num("plans_per_second", kModels / wall)
        .Num("p50_ms", PercentileMs(cold_seconds, 0.50))
        .Num("p99_ms", PercentileMs(cold_seconds, 0.99));
  }

  // --- Phase 2: warm storm (every request a cache hit). ---
  {
    std::vector<std::vector<Sample>> per_client(kClients);
    const double start = NowSeconds();
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        serve::RemotePlanService client(socket_path);
        const std::string tenant = "tenant-" + std::to_string(c);
        for (int round = 0; round < kWarmRounds; ++round) {
          for (int m = 0; m < kModels; ++m) {
            per_client[c].push_back(TimedCall(client, StormRequest(m, tenant)));
          }
        }
      });
    }
    for (std::thread& thread : clients) {
      thread.join();
    }
    const double wall = NowSeconds() - start;

    std::vector<double> warm_seconds;
    int hits = 0;
    int failures = 0;
    for (const std::vector<Sample>& samples : per_client) {
      for (const Sample& sample : samples) {
        if (!sample.ok) {
          ++failures;
          continue;
        }
        warm_seconds.push_back(sample.seconds);
        hits += sample.cache_hit ? 1 : 0;
      }
    }
    const int total = kClients * kWarmRounds * kModels;
    std::printf(
        "warm:   %3d plans in %6.2f s (%6.2f plans/s, p50 %7.2f ms, p99 %7.2f ms, "
        "%d/%d cache hits)\n",
        total, wall, total / wall, PercentileMs(warm_seconds, 0.50),
        PercentileMs(warm_seconds, 0.99), hits, total);
    report.AddRow()
        .Str("phase", "warm")
        .Int("requests", total)
        .Int("failures", failures)
        .Int("cache_hits", hits)
        .Num("wall_seconds", wall)
        .Num("plans_per_second", total / wall)
        .Num("p50_ms", PercentileMs(warm_seconds, 0.50))
        .Num("p99_ms", PercentileMs(warm_seconds, 0.99));
  }

  // --- Phase 3 (--dedup): single-flight dedup storm on one cold key. ---
  int dedup_failures = 0;
  if (dedup && self_hosted) {
    const int kStormClients = smoke ? 8 : 32;
    // A model index no other phase uses: cold in memory and on disk.
    const int kColdIndex = kModels + 101;
    Metric* compiles = Metrics::Get("serve/compiles");
    const int64_t compiles_before = compiles->value();

    std::vector<Sample> samples(kStormClients);
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> racers;
    racers.reserve(kStormClients);
    for (int c = 0; c < kStormClients; ++c) {
      racers.emplace_back([&, c] {
        serve::RemotePlanService client(socket_path);
        const serve::ServeRequest request = StormRequest(kColdIndex, "dedup");
        ready.fetch_add(1);
        while (!go.load()) {
        }
        samples[c] = TimedCall(client, request);
      });
    }
    while (ready.load() < kStormClients) {
    }
    const double start = NowSeconds();
    go.store(true);
    for (std::thread& thread : racers) {
      thread.join();
    }
    const double wall = NowSeconds() - start;

    std::vector<double> dedup_seconds;
    for (const Sample& sample : samples) {
      if (!sample.ok) {
        ++dedup_failures;
        continue;
      }
      dedup_seconds.push_back(sample.seconds);
    }
    const int64_t storm_compiles = compiles->value() - compiles_before;
    std::printf(
        "dedup:  %3d racers on one cold key in %6.2f s (%lld compile%s, p50 %7.2f ms, "
        "p99 %7.2f ms)\n",
        kStormClients, wall, static_cast<long long>(storm_compiles),
        storm_compiles == 1 ? "" : "s", PercentileMs(dedup_seconds, 0.50),
        PercentileMs(dedup_seconds, 0.99));
    report.AddRow()
        .Str("phase", "dedup")
        .Int("requests", kStormClients)
        .Int("failures", dedup_failures)
        .Int("compiles", static_cast<int>(storm_compiles))
        .Num("wall_seconds", wall)
        .Num("plans_per_second", kStormClients / wall)
        .Num("p50_ms", PercentileMs(dedup_seconds, 0.50))
        .Num("p99_ms", PercentileMs(dedup_seconds, 0.99));
    if (storm_compiles != 1 || dedup_failures > 0) {
      std::fprintf(stderr, "serve_storm: FAILED (dedup storm: compiles=%lld failures=%d)\n",
                   static_cast<long long>(storm_compiles), dedup_failures);
      return 1;
    }
  }

  // --- Phase 4 (--dedup): capacity sweep — warm plans/sec vs workers. ---
  if (dedup && self_hosted) {
    const serve::ServerOptions base_options = server->options();
    std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    for (const int workers : worker_counts) {
      server->Stop();
      serve::ServerOptions options = base_options;
      options.num_workers = workers;
      server = std::make_unique<serve::PlanServer>(options);
      const Status status = server->Start();
      if (!status.ok()) {
        std::fprintf(stderr, "serve_storm: sweep: %s\n", status.ToString().c_str());
        return 1;
      }

      std::atomic<int> sweep_failures{0};
      std::atomic<int> sweep_hits{0};
      const double start = NowSeconds();
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          serve::RemotePlanService client(socket_path);
          const std::string tenant = "sweep-" + std::to_string(c);
          for (int round = 0; round < kWarmRounds; ++round) {
            for (int m = 0; m < kModels; ++m) {
              const Sample sample = TimedCall(client, StormRequest(m, tenant));
              if (!sample.ok) {
                sweep_failures.fetch_add(1);
              } else if (sample.cache_hit) {
                sweep_hits.fetch_add(1);
              }
            }
          }
        });
      }
      for (std::thread& thread : clients) {
        thread.join();
      }
      const double wall = NowSeconds() - start;
      const int total = kClients * kWarmRounds * kModels;
      std::printf("sweep:  %d worker%s -> %6.2f plans/s (%d requests, %d hits, %d failures)\n",
                  workers, workers == 1 ? " " : "s", total / wall, total, sweep_hits.load(),
                  sweep_failures.load());
      report.AddRow()
          .Str("phase", "sweep")
          .Int("workers", workers)
          .Int("requests", total)
          .Int("failures", sweep_failures.load())
          .Int("cache_hits", sweep_hits.load())
          .Num("wall_seconds", wall)
          .Num("plans_per_second", total / wall);
      if (sweep_failures.load() > 0) {
        std::fprintf(stderr, "serve_storm: FAILED (sweep at %d workers: %d failures)\n", workers,
                     sweep_failures.load());
        return 1;
      }
    }
    // Restore the original worker count for the restart phase below.
    server->Stop();
    server = std::make_unique<serve::PlanServer>(base_options);
    const Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "serve_storm: sweep: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // --- Phase 5: restart, then serve from the disk cache. ---
  if (self_hosted) {
    server->Stop();
    // A new daemon process starts with an empty memory cache; only the
    // disk entries persist.
    serve::PlanCache::Global().Clear(/*also_disk=*/false);
    serve::ServerOptions options = server->options();
    server = std::make_unique<serve::PlanServer>(options);
    const Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "serve_storm: restart: %s\n", status.ToString().c_str());
      return 1;
    }

    serve::RemotePlanService client(socket_path);
    std::vector<double> restart_seconds;
    int hits = 0;
    int failures = 0;
    const double start = NowSeconds();
    for (int m = 0; m < kModels; ++m) {
      const Sample sample = TimedCall(client, StormRequest(m, "restart"));
      if (!sample.ok) {
        ++failures;
        continue;
      }
      restart_seconds.push_back(sample.seconds);
      hits += sample.cache_hit ? 1 : 0;
    }
    const double wall = NowSeconds() - start;
    std::printf(
        "restart: %2d plans in %6.2f s (%6.2f plans/s, p50 %7.2f ms, %d/%d warm from disk)\n",
        kModels, wall, kModels / wall, PercentileMs(restart_seconds, 0.50), hits, kModels);
    report.AddRow()
        .Str("phase", "restart")
        .Int("requests", kModels)
        .Int("failures", failures)
        .Int("cache_hits", hits)
        .Num("wall_seconds", wall)
        .Num("plans_per_second", kModels / wall)
        .Num("p50_ms", PercentileMs(restart_seconds, 0.50))
        .Num("p99_ms", PercentileMs(restart_seconds, 0.99));

    server->Stop();
    const serve::ServerStats stats = server->stats();
    const int expected_warm = kModels;
    if (failures > 0 || cold_failures > 0 || hits != expected_warm) {
      std::fprintf(stderr,
                   "serve_storm: FAILED (cold_failures=%d failures=%d disk_warm=%d/%d "
                   "rejected=%lld)\n",
                   cold_failures, failures, hits, expected_warm,
                   static_cast<long long>(stats.rejected_queue));
      return 1;
    }
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);
    ::unlink(socket_path.c_str());
  }

  if (!report.Write(flags.json_path)) {
    return 1;
  }
  return cold_failures == 0 ? 0 : 1;
}
