// Figure 10: inter-op parallelism ablation (7.3).
//
// Compares the full stage-slicing DP ("DP") against "Equal operator"
// (clustering disabled: equal op counts per layer) and "Equal layer"
// (stage boundaries restricted to equal layer counts). Expected shape:
// DP == Equal-layer on homogeneous GPT; DP > Equal-layer > Equal-operator
// on heterogeneous Wide-ResNet (the paper reports 2.6x/1.6x at 32 GPUs).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/baselines.h"
#include "src/models/gpt.h"
#include "src/models/wide_resnet.h"

namespace {

using namespace alpa;
using namespace alpa::bench;

StatusOr<ExecutionStats> RunVariant(Graph graph, const ClusterSpec& cluster,
                                    int num_microbatches, int layers,
                                    ClusteringMethod clustering, bool equal_layer) {
  ParallelizeOptions options = BaselineOptionTemplate();
  options.inter.num_microbatches = num_microbatches;
  options.inter.target_layers = layers;
  options.inter.clustering = clustering;
  options.inter.equal_layer_stages = equal_layer;
  return CompileAndSimulate(graph, cluster, options);
}

template <typename BuildFn>
void Row(const char* name, int gpus, int num_microbatches, int layers, BuildFn&& build) {
  const ClusterSpec cluster = ClusterFor(gpus);
  const StatusOr<ExecutionStats> dp = RunVariant(build(), cluster, num_microbatches, layers,
                                                 ClusteringMethod::kDpCommBalanced, false);
  const StatusOr<ExecutionStats> equal_op = RunVariant(
      build(), cluster, num_microbatches, layers, ClusteringMethod::kEqualOperator, false);
  const StatusOr<ExecutionStats> equal_layer = RunVariant(
      build(), cluster, num_microbatches, layers, ClusteringMethod::kDpCommBalanced, true);
  std::printf("%-12s %6d | %10s %14s %12s\n", name, gpus, Cell(dp).c_str(),
              Cell(equal_op).c_str(), Cell(equal_layer).c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(ParseBenchFlags(argc, argv));
  std::printf("=== Figure 10: inter-op ablation (aggregate PFLOPS) ===\n");
  std::printf("%-12s %6s | %10s %14s %12s\n", "model", "#gpus", "dp", "equal-operator",
              "equal-layer");

  for (int gpus : {8, 16, 32}) {
    Row("GPT", gpus, 64, 16, [&] {
      GptConfig config;
      config.hidden = gpus >= 32 ? 2560 : 2048;
      config.num_layers = 32;
      config.num_heads = 32;
      config.microbatch = 8;
      return BuildGpt(config);
    });
  }
  for (int gpus : {8, 16, 32}) {
    Row("Wide-ResNet", gpus, 32, 16, [&] {
      WideResNetConfig config;
      config.base_channels = gpus >= 32 ? 448 : 320;
      config.width_factor = 2;
      config.microbatch = 24;
      return BuildWideResNet(config);
    });
  }
  return 0;
}
