// Figure 13 / Figure 14: case study — the parallelization strategies Alpa
// finds for Wide-ResNet on 4, 8, and 16 GPUs (7.6).
//
// Prints the stage/mesh assignment and the sharding spec of every forward
// convolution and weight. Expected shape: on 4 GPUs a single stage whose
// ILP solution partitions along the batch axis early and switches to
// channel partitioning in the deepest layers; on 16 GPUs several stages
// with different mesh sizes, data-parallel early and channel-parallel late.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/models/wide_resnet.h"

// Usage: fig13_case_study [--trace out.json]
//
// With --trace, the binary writes a unified Chrome/Perfetto trace: the
// compile passes (clustering, profiling with per-cell ILP solves and
// cache-hit annotations, stage DP) on wall-clock lanes, followed by the
// simulated pipeline execution on one virtual-time lane per mesh
// (forward/backward/apply_grad plus send_act/send_grad transfers and
// bubble gaps) — the trace-view companion to the printed Fig. 13 specs.
int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  InitBench(ParseBenchFlags(argc, argv));
  std::printf("=== Figure 13/14: Wide-ResNet parallelization case study ===\n");

  const WideResNetBenchmarkCase cases[] = {WideResNetPaperCases()[0],
                                           WideResNetPaperCases()[1],
                                           WideResNetPaperCases()[3]};
  for (const WideResNetBenchmarkCase& bench_case : cases) {
    WideResNetConfig config = bench_case.config;
    config.microbatch = 24;
    Graph graph = BuildWideResNet(config);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    ParallelizeOptions options = BaselineOptionTemplate();
    options.inter.num_microbatches = 32;
    options.inter.target_layers = 12;
    ParallelPlan plan;
    const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
    if (!stats.ok()) {
      std::printf("\n--- %s on %d GPUs: %s ---\n", bench_case.name.c_str(),
                  bench_case.num_gpus, stats.status().ToString().c_str());
      continue;
    }
    std::printf("\n--- %s on %d GPUs: %s ---\n", bench_case.name.c_str(), bench_case.num_gpus,
                stats->ToString().c_str());
    for (size_t s = 0; s < plan.pipeline.stages.size(); ++s) {
      const CompiledStage& stage = plan.pipeline.stages[s];
      std::printf("stage %zu: layers [%d,%d] on %s logical (%d,%d)\n", s, stage.layer_begin,
                  stage.layer_end, stage.placement.shape.ToString().c_str(),
                  stage.logical_shape[0], stage.logical_shape[1]);
      int shown = 0;
      for (const auto& [name, spec] : stage.op_spec_summary) {
        // Show convolutions (activations) and their weights.
        const bool conv = name.find("conv") != std::string::npos ||
                          name.find("proj") != std::string::npos ||
                          name.find("stem") != std::string::npos;
        if (conv && name.find(".w") == std::string::npos) {
          std::printf("    %-24s activation %s\n", name.c_str(), spec.c_str());
          if (++shown >= 10) {
            std::printf("    ...\n");
            break;
          }
        }
      }
    }
    std::fflush(stdout);
  }
  return 0;
}
