// Figure 13 / Figure 14: case study — the parallelization strategies Alpa
// finds for Wide-ResNet on 4, 8, and 16 GPUs (7.6).
//
// Prints the stage/mesh assignment and the sharding spec of every forward
// convolution and weight. Expected shape: on 4 GPUs a single stage whose
// ILP solution partitions along the batch axis early and switches to
// channel partitioning in the deepest layers; on 16 GPUs several stages
// with different mesh sizes, data-parallel early and channel-parallel late.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/models/wide_resnet.h"
#include "src/support/trace.h"

// Usage: fig13_case_study [--trace out.json] [--json results.json]
//
// With --trace, the binary writes a unified Chrome/Perfetto trace: the
// compile passes (clustering, profiling with per-cell ILP solves and
// cache-hit annotations, stage DP) on wall-clock lanes, followed by the
// simulated pipeline execution on one virtual-time lane per mesh
// (forward/backward/apply_grad plus send_act/send_grad transfers and
// bubble gaps) — the trace-view companion to the printed Fig. 13 specs.
// The same file also gets an *executed* timeline: a scaled-down
// Wide-ResNet run through the real SPMD executor, one wall-clock lane per
// worker thread, so simulated and executed schedules can be compared
// side by side.
int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  InitBench(flags);
  JsonReport report("fig13_case_study");
  std::printf("=== Figure 13/14: Wide-ResNet parallelization case study ===\n");

  const WideResNetBenchmarkCase cases[] = {WideResNetPaperCases()[0],
                                           WideResNetPaperCases()[1],
                                           WideResNetPaperCases()[3]};
  for (const WideResNetBenchmarkCase& bench_case : cases) {
    WideResNetConfig config = bench_case.config;
    config.microbatch = 24;
    Graph graph = BuildWideResNet(config);
    const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);
    ParallelizeOptions options = BaselineOptionTemplate();
    options.inter.num_microbatches = 32;
    options.inter.target_layers = 12;
    ParallelPlan plan;
    const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
    JsonReport::Row& row = report.AddRow()
                               .Str("case", bench_case.name)
                               .Int("gpus", bench_case.num_gpus)
                               .Stats(stats);
    if (!stats.ok()) {
      std::printf("\n--- %s on %d GPUs: %s ---\n", bench_case.name.c_str(),
                  bench_case.num_gpus, stats.status().ToString().c_str());
      continue;
    }
    row.Int("stages", static_cast<long long>(plan.pipeline.stages.size()));
    std::printf("\n--- %s on %d GPUs: %s ---\n", bench_case.name.c_str(), bench_case.num_gpus,
                stats->ToString().c_str());
    for (size_t s = 0; s < plan.pipeline.stages.size(); ++s) {
      const CompiledStage& stage = plan.pipeline.stages[s];
      std::printf("stage %zu: layers [%d,%d] on %s logical (%d,%d)\n", s, stage.layer_begin,
                  stage.layer_end, stage.placement.shape.ToString().c_str(),
                  stage.logical_shape[0], stage.logical_shape[1]);
      int shown = 0;
      for (const auto& [name, spec] : stage.op_spec_summary) {
        // Show convolutions (activations) and their weights.
        const bool conv = name.find("conv") != std::string::npos ||
                          name.find("proj") != std::string::npos ||
                          name.find("stem") != std::string::npos;
        if (conv && name.find(".w") == std::string::npos) {
          std::printf("    %-24s activation %s\n", name.c_str(), spec.c_str());
          if (++shown >= 10) {
            std::printf("    ...\n");
            break;
          }
        }
      }
    }
    std::fflush(stdout);
  }

  if (!flags.trace_path.empty()) {
    // Executed timeline: the paper cases above are simulation-only (their
    // tensors are far too large for the in-process CPU executor), so run a
    // scaled-down Wide-ResNet through `ExecutePlan` and re-flush the trace.
    // The exported file then holds the real-time worker lanes
    // ("exec s<stage> r<rank>", wall clock) next to the simulator's
    // virtual-time mesh lanes — one Chrome trace, both timelines.
    WideResNetConfig small;
    small.microbatch = 1;
    small.base_channels = 8;
    small.width_factor = 1;
    small.num_classes = 16;
    Graph small_graph = BuildWideResNet(small);
    const ClusterSpec small_cluster = ClusterSpec::AwsP3(1, 4);
    ParallelizeOptions small_options;
    small_options.num_microbatches = 2;
    small_options.inter.submesh_shapes = {SubmeshShape{1, 2}};
    small_options.trace_path = flags.trace_path;
    const StatusOr<ParallelPlan> small_plan =
        Parallelize(small_graph, small_cluster, small_options);
    if (!small_plan.ok()) {
      std::printf("\nexecuted timeline skipped: %s\n", small_plan.status().ToString().c_str());
    } else {
      const StatusOr<exec::ExecResult> executed =
          ExecutePlan(*small_plan, small_graph, small_cluster, exec::ExecOptions{});
      if (!executed.ok()) {
        std::printf("\nexecuted timeline failed: %s\n", executed.status().ToString().c_str());
      } else {
        std::printf(
            "\nexecuted timeline: tiny Wide-ResNet on %d devices, loss[0]=%g, "
            "%lld bytes moved (%lld cross-mesh), %.2fs wall\n",
            executed->num_devices, executed->microbatch_loss[0],
            static_cast<long long>(executed->total_bytes),
            static_cast<long long>(executed->cross_mesh_bytes), executed->wall_seconds);
        const Status flushed = Trace::WriteJson(flags.trace_path);
        if (!flushed.ok()) {
          std::printf("trace export failed: %s\n", flushed.ToString().c_str());
        }
      }
    }
  }
  return report.Write(flags.json_path) ? 0 : 1;
}
