// Figure 12: cross-mesh resharding (7.5).
//
// Measures the estimated time of moving a Wide-ResNet stage-boundary
// activation between meshes of unequal shapes under three strategies:
// "signal send/recv" (1-byte synthetic upper bound), naive send/recv
// (Fig. 7b), and the generalized local all-gather (Fig. 7c). The paper
// reports ~2x speedup from the local all-gather at 32 GPUs.
//
// The naive and local-all-gather cases are additionally EXECUTED through
// the src/exec shared-memory transport, one thread per device: the bench
// exits nonzero when any destination tile differs from the corresponding
// slice of the source tensor, or when any measured wire byte count
// diverges from the CrossMeshPlan byte accounting that EstimateTime
// charges (per task and in total).
//
// Usage: fig12_resharding [--json out.json]
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/exec/host_tensor.h"
#include "src/exec/reshard_exec.h"
#include "src/exec/transport.h"
#include "src/runtime/cross_mesh.h"

namespace {

using namespace alpa;
using alpa::exec::Box;
using alpa::exec::TileData;

struct ExecMeasurement {
  bool ok = false;
  int64_t measured_bytes = 0;   // All transport traffic (p2p + local exchange).
  int64_t measured_p2p = 0;     // Sum of the p2p task sizes.
  int64_t num_p2p_tasks = 0;
};

// Runs the resharding as real data movement and checks both oracles:
// numeric (every destination tile is the right slice of `full`) and byte
// accounting (each executed p2p task moves exactly plan.sends[i].bytes).
ExecMeasurement ExecuteReshard(const ClusterSpec& cluster, const DeviceMesh& src,
                               const ShardingSpec& src_spec, const DeviceMesh& dst,
                               const ShardingSpec& dst_spec, const TensorShape& shape,
                               const CrossMeshPlan& plan, ReshardStrategy strategy) {
  ExecMeasurement m;
  const exec::ReshardProgram program =
      exec::BuildReshardProgram(src, src_spec, dst, dst_spec, shape, 4, strategy);

  // Task-by-task byte agreement with the planner (the 1:1 alignment is a
  // documented property of BuildReshardProgram).
  if (program.p2p.size() != plan.sends.size()) {
    std::fprintf(stderr, "task count mismatch: executed %zu, planned %zu\n", program.p2p.size(),
                 plan.sends.size());
    return m;
  }
  m.num_p2p_tasks = static_cast<int64_t>(program.p2p.size());
  for (size_t i = 0; i < program.p2p.size(); ++i) {
    const exec::ReshardChunk& chunk = program.p2p[i];
    const CrossMeshTask& task = plan.sends[i];
    if (chunk.src_device != task.src_device || chunk.dst_device != task.dst_device ||
        std::fabs(static_cast<double>(chunk.wire_bytes) - task.bytes) > 0.5) {
      std::fprintf(stderr, "task %zu diverges: executed %d->%d %lld B, planned %d->%d %.1f B\n",
                   i, chunk.src_device, chunk.dst_device,
                   static_cast<long long>(chunk.wire_bytes), task.src_device, task.dst_device,
                   task.bytes);
      return m;
    }
  }

  exec::HostTensor full(shape);
  const uint64_t key = exec::HashName("fig12");
  for (int64_t i = 0; i < full.elements(); ++i) {
    full.data()[i] = exec::GenValue(key, i);
  }

  // Participant tiles: source devices read their shard, destination devices
  // fill theirs (a device can be on both sides in general).
  std::vector<TileData> src_tiles(static_cast<size_t>(cluster.num_devices()));
  std::vector<TileData> dst_tiles(static_cast<size_t>(cluster.num_devices()));
  std::vector<int> participants;
  for (int r = 0; r < src.num_devices(); ++r) {
    const int device = src.DeviceAt(r / src.dim(1), r % src.dim(1));
    src_tiles[static_cast<size_t>(device)] = exec::ExtractTile(
        full, src_spec.TileSlice(shape, src, r / src.dim(1), r % src.dim(1)));
    participants.push_back(device);
  }
  for (int r = 0; r < dst.num_devices(); ++r) {
    const int device = dst.DeviceAt(r / dst.dim(1), r % dst.dim(1));
    TileData& tile = dst_tiles[static_cast<size_t>(device)];
    tile.full_shape = shape;
    tile.box = dst_spec.TileSlice(shape, dst, r / dst.dim(1), r % dst.dim(1));
    tile.data.assign(static_cast<size_t>(exec::BoxElements(tile.box)), 0.0f);
    if (!src_tiles[static_cast<size_t>(device)].valid()) {
      participants.push_back(device);
    }
  }

  exec::Transport transport(cluster.num_devices());
  const uint64_t tag = exec::MakeTag(exec::kTagReshard, 1, 0, 0);
  std::vector<std::thread> threads;
  threads.reserve(participants.size());
  for (int device : participants) {
    threads.emplace_back([&, device] {
      const TileData& src_tile = src_tiles[static_cast<size_t>(device)];
      TileData& dst_tile = dst_tiles[static_cast<size_t>(device)];
      exec::ExecuteReshardForDevice(transport, program, device,
                                    src_tile.valid() ? &src_tile : nullptr,
                                    dst_tile.valid() ? &dst_tile : nullptr, tag);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // Numeric oracle: every destination tile must be bit-identical to the
  // matching slice of the source tensor.
  for (int r = 0; r < dst.num_devices(); ++r) {
    const int device = dst.DeviceAt(r / dst.dim(1), r % dst.dim(1));
    const TileData& got = dst_tiles[static_cast<size_t>(device)];
    const TileData want = exec::ExtractTile(full, got.box);
    if (got.data != want.data) {
      std::fprintf(stderr, "device %d received wrong data for box %s\n", device,
                   exec::BoxToString(got.box).c_str());
      return m;
    }
  }

  // Byte oracle: the transport counters are the measurement; they must add
  // up to exactly what the program (and therefore the plan) accounts.
  m.measured_bytes = transport.TotalBytes();
  m.measured_p2p = transport.ChannelBytes(exec::Channel::kCrossMesh);
  const int64_t planned_p2p = static_cast<int64_t>(std::llround(plan.total_p2p_bytes));
  if (m.measured_p2p != program.total_p2p_bytes || m.measured_p2p != planned_p2p ||
      m.measured_bytes != program.total_p2p_bytes + program.total_local_bytes) {
    std::fprintf(stderr,
                 "byte accounting diverges: measured p2p %lld (plan %lld), total %lld "
                 "(program %lld)\n",
                 static_cast<long long>(m.measured_p2p), static_cast<long long>(planned_p2p),
                 static_cast<long long>(m.measured_bytes),
                 static_cast<long long>(program.total_p2p_bytes + program.total_local_bytes));
    return m;
  }
  m.ok = true;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv);
  JsonReport report("fig12_resharding");

  std::printf("=== Figure 12: cross-mesh resharding on Wide-ResNet boundaries ===\n");
  std::printf("%6s | %14s %18s %18s | %8s | %s\n", "#gpus", "signal (ms)", "w/o local AG (ms)",
              "w/ local AG (ms)", "speedup", "executed bytes (naive / local AG)");

  bool all_ok = true;
  for (int gpus : {8, 16, 32}) {
    const ClusterSpec cluster = ClusterFor(gpus);
    // Sender: first half of the cluster; receiver: second half.
    MeshPlacement src_placement;
    MeshPlacement dst_placement;
    if (gpus == 8) {
      src_placement.shape = SubmeshShape{1, 4};
      dst_placement.shape = SubmeshShape{1, 4};
      dst_placement.device_begin = 4;
    } else {
      src_placement.shape = SubmeshShape{gpus / 16, 8};
      dst_placement.shape = SubmeshShape{gpus / 16, 8};
      dst_placement.host_begin = gpus / 16;
    }
    const DeviceMesh src = DeviceMesh::Create(
        cluster, src_placement,
        {src_placement.shape.num_hosts, src_placement.shape.devices_per_host});
    const DeviceMesh dst = DeviceMesh::Create(
        cluster, dst_placement,
        {dst_placement.shape.num_hosts, dst_placement.shape.devices_per_host});

    // A Wide-ResNet stage-boundary activation: [batch, spatial, channels],
    // batch-sharded on the sender, batch-sharded but replicated along the
    // second mesh axis on the receiver (data-parallel receiver rows).
    const TensorShape shape{24, 784, 1280};
    const ShardingSpec src_spec = ShardingSpec::OneDim(3, 0, DimSharding::kS1);
    const ShardingSpec dst_spec = ShardingSpec::OneDim(3, 0, DimSharding::kS0);

    const double t_signal = CrossMeshReshardTime(src, src_spec, dst, dst_spec, shape, 4,
                                                 ReshardStrategy::kSignalOnly);
    const CrossMeshPlan plan_naive = PlanCrossMeshResharding(src, src_spec, dst, dst_spec, shape,
                                                             4, ReshardStrategy::kNaiveSendRecv);
    const CrossMeshPlan plan_allgather = PlanCrossMeshResharding(
        src, src_spec, dst, dst_spec, shape, 4, ReshardStrategy::kLocalAllGather);
    const double t_naive = plan_naive.EstimateTime(cluster);
    const double t_allgather = plan_allgather.EstimateTime(cluster);

    const ExecMeasurement naive = ExecuteReshard(cluster, src, src_spec, dst, dst_spec, shape,
                                                 plan_naive, ReshardStrategy::kNaiveSendRecv);
    const ExecMeasurement allgather =
        ExecuteReshard(cluster, src, src_spec, dst, dst_spec, shape, plan_allgather,
                       ReshardStrategy::kLocalAllGather);
    all_ok = all_ok && naive.ok && allgather.ok;

    std::printf("%6d | %14.3f %18.3f %18.3f | %7.2fx | %lld / %lld%s\n", gpus, t_signal * 1e3,
                t_naive * 1e3, t_allgather * 1e3, t_naive / t_allgather,
                static_cast<long long>(naive.measured_bytes),
                static_cast<long long>(allgather.measured_bytes),
                naive.ok && allgather.ok ? "" : "  BYTE/DATA MISMATCH");

    report.AddRow()
        .Int("gpus", gpus)
        .Str("strategy", "signal")
        .Num("time_ms", t_signal * 1e3)
        .Bool("executed", false);
    report.AddRow()
        .Int("gpus", gpus)
        .Str("strategy", "naive")
        .Num("time_ms", t_naive * 1e3)
        .Bool("executed", true)
        .Bool("ok", naive.ok)
        .Int("measured_bytes", naive.measured_bytes)
        .Int("measured_p2p_bytes", naive.measured_p2p)
        .Int("p2p_tasks", naive.num_p2p_tasks);
    report.AddRow()
        .Int("gpus", gpus)
        .Str("strategy", "local_allgather")
        .Num("time_ms", t_allgather * 1e3)
        .Num("speedup", t_naive / t_allgather)
        .Bool("executed", true)
        .Bool("ok", allgather.ok)
        .Int("measured_bytes", allgather.measured_bytes)
        .Int("measured_p2p_bytes", allgather.measured_p2p)
        .Int("p2p_tasks", allgather.num_p2p_tasks);
  }
  if (!report.Write(flags.json_path)) {
    return 1;
  }
  if (!all_ok) {
    std::fprintf(stderr, "FAILED: executed resharding diverged from the plan\n");
    return 1;
  }
  std::printf("executed bytes match the CrossMeshPlan accounting for every case\n");
  return 0;
}
