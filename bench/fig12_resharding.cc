// Figure 12: cross-mesh resharding (7.5).
//
// Measures the estimated time of moving a Wide-ResNet stage-boundary
// activation between meshes of unequal shapes under three strategies:
// "signal send/recv" (1-byte synthetic upper bound), naive send/recv
// (Fig. 7b), and the generalized local all-gather (Fig. 7c). The paper
// reports ~2x speedup from the local all-gather at 32 GPUs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/cross_mesh.h"

int main() {
  using namespace alpa;
  using namespace alpa::bench;

  std::printf("=== Figure 12: cross-mesh resharding on Wide-ResNet boundaries ===\n");
  std::printf("%6s | %14s %18s %18s | %8s\n", "#gpus", "signal (ms)", "w/o local AG (ms)",
              "w/ local AG (ms)", "speedup");

  for (int gpus : {8, 16, 32}) {
    const ClusterSpec cluster = ClusterFor(gpus);
    // Sender: first half of the cluster; receiver: second half.
    MeshPlacement src_placement;
    MeshPlacement dst_placement;
    if (gpus == 8) {
      src_placement.shape = SubmeshShape{1, 4};
      dst_placement.shape = SubmeshShape{1, 4};
      dst_placement.device_begin = 4;
    } else {
      src_placement.shape = SubmeshShape{gpus / 16, 8};
      dst_placement.shape = SubmeshShape{gpus / 16, 8};
      dst_placement.host_begin = gpus / 16;
    }
    const DeviceMesh src = DeviceMesh::Create(
        cluster, src_placement,
        {src_placement.shape.num_hosts, src_placement.shape.devices_per_host});
    const DeviceMesh dst = DeviceMesh::Create(
        cluster, dst_placement,
        {dst_placement.shape.num_hosts, dst_placement.shape.devices_per_host});

    // A Wide-ResNet stage-boundary activation: [batch, spatial, channels],
    // batch-sharded on the sender, batch-sharded but replicated along the
    // second mesh axis on the receiver (data-parallel receiver rows).
    const TensorShape shape{24, 784, 1280};
    const ShardingSpec src_spec = ShardingSpec::OneDim(3, 0, DimSharding::kS1);
    const ShardingSpec dst_spec = ShardingSpec::OneDim(3, 0, DimSharding::kS0);

    const double t_signal = CrossMeshReshardTime(src, src_spec, dst, dst_spec, shape, 4,
                                                 ReshardStrategy::kSignalOnly);
    const double t_naive = CrossMeshReshardTime(src, src_spec, dst, dst_spec, shape, 4,
                                                ReshardStrategy::kNaiveSendRecv);
    const double t_allgather = CrossMeshReshardTime(src, src_spec, dst, dst_spec, shape, 4,
                                                    ReshardStrategy::kLocalAllGather);
    std::printf("%6d | %14.3f %18.3f %18.3f | %7.2fx\n", gpus, t_signal * 1e3, t_naive * 1e3,
                t_allgather * 1e3, t_naive / t_allgather);
  }
  return 0;
}
