// Microbenchmarks of the compiler's solvers (google-benchmark): the ILP
// engine (forest DP fast path vs branch & bound), the stage-slicing DP,
// operator clustering, and a full intra-op pass on one transformer layer.
#include <benchmark/benchmark.h>

#include "src/inter/stage_extraction.h"
#include "src/intra/intra_pass.h"
#include "src/mesh/submesh.h"
#include "src/models/gpt.h"
#include "src/solver/ilp_solver.h"
#include "src/solver/operator_clustering.h"
#include "src/solver/stage_dp.h"
#include "src/support/rng.h"

namespace alpa {
namespace {

IlpProblem ChainProblem(int nodes, int choices, uint64_t seed) {
  Rng rng(seed);
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (auto& costs : problem.node_costs) {
    for (int i = 0; i < choices; ++i) {
      costs.push_back(rng.NextDouble(0, 10));
    }
  }
  for (int v = 0; v + 1 < nodes; ++v) {
    IlpProblem::Edge edge;
    edge.u = v;
    edge.v = v + 1;
    edge.cost.assign(static_cast<size_t>(choices), std::vector<double>());
    for (auto& row : edge.cost) {
      for (int j = 0; j < choices; ++j) {
        row.push_back(rng.NextDouble(0, 5));
      }
    }
    problem.edges.push_back(std::move(edge));
  }
  return problem;
}

void BM_IlpForestDp(benchmark::State& state) {
  const IlpProblem problem =
      ChainProblem(static_cast<int>(state.range(0)), 16, 42);
  IlpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).objective);
  }
}
BENCHMARK(BM_IlpForestDp)->Arg(64)->Arg(512)->Arg(2048);

void BM_IlpBranchAndBound(benchmark::State& state) {
  // Chain plus chords -> cycles -> branch & bound path.
  IlpProblem problem = ChainProblem(static_cast<int>(state.range(0)), 8, 7);
  Rng rng(3);
  for (int v = 0; v + 4 < state.range(0); v += 4) {
    IlpProblem::Edge edge;
    edge.u = v;
    edge.v = v + 4;
    edge.cost.assign(8, std::vector<double>());
    for (auto& row : edge.cost) {
      for (int j = 0; j < 8; ++j) {
        row.push_back(rng.NextDouble(0, 5));
      }
    }
    problem.edges.push_back(std::move(edge));
  }
  IlpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Solve(problem).objective);
  }
}
BENCHMARK(BM_IlpBranchAndBound)->Arg(16)->Arg(32);

void BM_StageDp(benchmark::State& state) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(8, 8);
  const std::vector<SubmeshShape> shapes = EnumerateSubmeshShapes(cluster);
  const int layers = static_cast<int>(state.range(0));
  const StageProfileFn profile = [&](int begin, int end, int shape_index) {
    StageProfile p;
    const int count = end - begin + 1;
    const int devices = shapes[static_cast<size_t>(shape_index)].num_devices();
    p.t_intra = 0.1 * count / devices;
    p.weight_bytes = 4e9 * count / devices;
    return p;
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveStageDp(layers, 32, cluster, shapes, profile).total_latency);
  }
}
BENCHMARK(BM_StageDp)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_OperatorClustering(benchmark::State& state) {
  GptConfig config;
  config.hidden = 1024;
  config.num_layers = static_cast<int>(state.range(0));
  config.num_heads = 16;
  config.microbatch = 4;
  config.seq_len = 512;
  config.vocab = 8192;
  const Graph graph = BuildGpt(config);
  ClusteringOptions options;
  options.num_layers = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusterOperators(graph, options).feasible);
  }
}
BENCHMARK(BM_OperatorClustering)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_IntraOpPassTransformerLayer(benchmark::State& state) {
  GptConfig config;
  config.hidden = 2048;
  config.num_layers = 2;
  config.num_heads = 32;
  config.microbatch = 8;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const StageSubgraph layer = ExtractStage(graph, 1, 1);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 1, 8);
  IntraOpOptions options;
  options.num_microbatches = 32;
  options.solver.max_search_nodes = 60'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveIntraOp(layer.graph, mesh, options).t_intra);
  }
}
BENCHMARK(BM_IntraOpPassTransformerLayer)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace alpa

BENCHMARK_MAIN();
