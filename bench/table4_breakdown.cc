// Table 4: compilation time breakdown (7.4), serial vs parallel.
//
// The paper accelerates compilation with distributed profiling across the
// cluster's meshes and reports the resulting phase breakdown for GPT-39B
// (Table 4). Our analogue is the threaded compilation pipeline: the
// (layer x variant) ILP profiling sweep, the stage DP's profile
// precompute, and the equal-layer enumeration fan out across a worker
// pool, with a process-wide memo cache deduplicating structurally
// identical solves. This benchmark compiles one multi-layer GPT setting
// serially and in parallel, verifies the plans are bit-identical
// (PlanEquals), and prints the phase breakdown, cache traffic, and
// speedup. A third compilation against the warm cache shows the
// memoization path (~all solves become hits).
//
// Usage: table4_breakdown [--threads N]   (default 4)
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"
#include "src/support/thread_pool.h"

namespace {

void PrintRow(const char* name, const alpa::CompileStats& stats) {
  std::printf("%-22s %8d | %8.2f %12.2f %14.2f %8.2f %8.2f %8.2f | %8lld %8lld %8lld\n", name,
              stats.threads_used, stats.total_seconds, stats.profiling_wall_seconds,
              stats.profiling_seconds, stats.clustering_seconds, stats.dp_seconds,
              stats.other_seconds, static_cast<long long>(stats.ilp_solves),
              static_cast<long long>(stats.ilp_cache_hits),
              static_cast<long long>(stats.ilp_cache_misses));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv, 4);
  const int threads = flags.threads;
  InitBench(flags);

  // GPT-2.6B on 8 GPUs, sliced into 16 layers: the largest single-host
  // setting of 7.1, with enough distinct (layer, variant) cells to occupy
  // the pool.
  const std::vector<GptBenchmarkCase> cases = GptPaperCases();
  const GptBenchmarkCase& bench_case = cases[2];
  GptConfig config = bench_case.config;
  config.microbatch = 8;
  const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);

  const auto compile = [&](int compile_threads) {
    Graph graph = BuildGpt(config);
    ParallelizeOptions options = BaselineOptionTemplate();
    options.inter.num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    options.inter.target_layers = 16;
    // Override the template's thread count per run; the mirror stays at
    // kInheritThreads so the authoritative field wins.
    options.inter.compile_threads = compile_threads;
    return Parallelize(graph, cluster, options);
  };

  std::printf("=== Table 4: compilation breakdown, %s on %d GPUs ===\n",
              bench_case.name.c_str(), bench_case.num_gpus);
  const int hardware = ThreadPool::DefaultThreads();
  std::printf("hardware concurrency: %d\n", hardware);
  if (threads > hardware) {
    std::printf("NOTE: requesting %d threads on %d core(s); wall-clock speedup is bounded\n"
                "by the hardware — expect ~%dx at best, 1x on a single core. Determinism\n"
                "and the warm-cache speedup below hold regardless.\n",
                threads, hardware, hardware);
  }
  std::printf("%-22s %8s | %8s %12s %14s %8s %8s %8s | %8s %8s %8s\n", "run", "threads",
              "total(s)", "prof.wall(s)", "prof.cumul(s)", "clust(s)", "dp(s)", "other(s)",
              "solves", "hits", "misses");

  IlpMemoCache::Global().Clear();
  const StatusOr<ParallelPlan> serial = compile(1);
  if (!serial.ok()) {
    std::printf("serial compilation failed: %s\n", serial.status().ToString().c_str());
    return 1;
  }
  PrintRow("serial", serial->compile_stats);

  IlpMemoCache::Global().Clear();  // Fair timing: no cross-run solve reuse.
  const StatusOr<ParallelPlan> parallel = compile(threads);
  if (!parallel.ok()) {
    std::printf("parallel compilation failed: %s\n", parallel.status().ToString().c_str());
    return 1;
  }
  PrintRow("parallel", parallel->compile_stats);

  // Warm cache: same config again, without clearing — every cacheable
  // solve becomes a lookup.
  const StatusOr<ParallelPlan> cached = compile(threads);
  if (!cached.ok()) {
    std::printf("warm-cache compilation failed: %s\n", cached.status().ToString().c_str());
    return 1;
  }
  PrintRow("parallel (warm cache)", cached->compile_stats);

  const bool identical = PlanEquals(serial->pipeline, parallel->pipeline) &&
                         PlanEquals(serial->pipeline, cached->pipeline);
  const double speedup = parallel->compile_stats.total_seconds > 0.0
                             ? serial->compile_stats.total_seconds /
                                   parallel->compile_stats.total_seconds
                             : 0.0;
  std::printf("\nplans bit-identical across runs: %s\n", identical ? "yes" : "NO (BUG)");
  std::printf("parallel speedup at %d threads: %.2fx\n", threads, speedup);

  std::printf("\n%-28s %12s   (paper: ours / w-o optimization)\n", "step", "seconds");
  std::printf("%-28s %12.2f   (1582.66 s / >16 hr)\n", "compilation + profiling",
              parallel->compile_stats.profiling_wall_seconds);
  std::printf("%-28s %12.2f   (1.65 s)\n", "stage construction DP",
              parallel->compile_stats.dp_seconds);
  std::printf("%-28s %12.2f   (4.47 s)\n", "other (clustering, codegen)",
              parallel->compile_stats.clustering_seconds + parallel->compile_stats.other_seconds);
  std::printf("%-28s %12.2f   (2393.26 s / >40 hr)\n", "total",
              parallel->compile_stats.total_seconds);
  std::printf("\nNote: the worker pool plays the role of the paper's distributed\n"
              "compilation across meshes; the memo cache plays the role of its\n"
              "cost-model reuse of profiled instruction costs.\n");
  return identical ? 0 : 1;
}
