// Compile-speed benchmark for the staged ILP solver core (presolve +
// chain/tree decomposition + flat branch & bound) against the pre-overhaul
// solver kept behind IlpEngine::kLegacy, plus the anytime portfolio engine
// (GRASP + simulated annealing racing the branch & bound).
//
// Compilations of the fig8 GPT setting (GPT-2.6B on 8 GPUs, 16 target
// layers) drive the comparison:
//   legacy cold     - old solver, all caches cleared
//   staged cold     - staged pipeline, all caches cleared
//   staged warm     - staged pipeline again without clearing (memo hits)
//   portfolio cold  - portfolio engine, all caches cleared
//   portfolio warm  - portfolio engine again without clearing
// Cold and warm plans of the same engine must be bit-identical
// (PlanEquals): the pipeline is deterministic and the memo layer is exact.
// Cross-engine plans are NOT required to match bit-for-bit — on
// budget-aborted cells the engines legitimately pick different co-optimal
// or incumbent plans; the per-problem equivalence (equal objectives,
// identical choices when both prove optimality) is covered by
// tests/solver_crosscheck_test. The presolve effectiveness counters
// (nodes/choices/edges before and after) come from the interned Metrics
// registry, reported as per-run deltas, as do the anytime gap statistics
// (max/mean relative optimality gap over each run's aborted solves).
//
// Usage: compile_speed [--threads N] [--json PATH]
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/core/api.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"
#include "src/solver/ilp_solver.h"
#include "src/support/trace.h"

namespace {

// Cumulative presolve counters; subtract two snapshots for one run.
struct PresolveSnapshot {
  long long nodes_in = 0;
  long long nodes_out = 0;
  long long choices_in = 0;
  long long choices_out = 0;
  long long edges_in = 0;
  long long edges_out = 0;
  long long optimal = 0;
  long long aborted = 0;
  long long explored = 0;
  long long gap_ppm_sum = 0;
  long long portfolio_races = 0;
  long long portfolio_handoffs = 0;
  long long portfolio_prunes = 0;
  long long elim_solved = 0;
  long long elim_bailed = 0;
  long long elim_cells = 0;
  long long elim_micros = 0;
  long long plan_micros = 0;
  long long presolve_micros = 0;
  long long bnb_micros = 0;
  long long build_micros = 0;
  long long seed_micros = 0;
  long long legacy_micros = 0;
  long long enum_micros = 0;
  long long edge_micros = 0;

  static PresolveSnapshot Take() {
    using alpa::Metrics;
    PresolveSnapshot s;
    s.elim_solved = Metrics::Value("ilp/elim/solved");
    s.elim_bailed = Metrics::Value("ilp/elim/bailed");
    s.elim_cells = Metrics::Value("ilp/elim/cells");
    s.elim_micros = Metrics::Value("ilp/elim/micros");
    s.plan_micros = Metrics::Value("ilp/elim/plan_micros");
    s.presolve_micros = Metrics::Value("ilp/presolve/micros");
    s.bnb_micros = Metrics::Value("ilp/bnb/micros");
    s.build_micros = Metrics::Value("ilp/build/micros");
    s.seed_micros = Metrics::Value("ilp/seed/micros");
    s.legacy_micros = Metrics::Value("ilp/legacy/micros");
    s.enum_micros = Metrics::Value("ilp/build/enum_micros");
    s.edge_micros = Metrics::Value("ilp/build/edge_micros");
    s.nodes_in = Metrics::Value("ilp/presolve/nodes_in");
    s.nodes_out = Metrics::Value("ilp/presolve/nodes_out");
    s.choices_in = Metrics::Value("ilp/presolve/choices_in");
    s.choices_out = Metrics::Value("ilp/presolve/choices_out");
    s.edges_in = Metrics::Value("ilp/presolve/edges_in");
    s.edges_out = Metrics::Value("ilp/presolve/edges_out");
    s.optimal = Metrics::Value("ilp/outcome/optimal");
    s.aborted = Metrics::Value("ilp/outcome/aborted");
    s.explored = Metrics::Value("ilp/outcome/explored");
    s.gap_ppm_sum = Metrics::Value("ilp/outcome/gap_ppm_sum");
    s.portfolio_races = Metrics::Value("ilp/portfolio/races");
    s.portfolio_handoffs = Metrics::Value("ilp/portfolio/incumbent_handoffs");
    s.portfolio_prunes = Metrics::Value("ilp/portfolio/bound_prunes");
    return s;
  }
  PresolveSnapshot Delta(const PresolveSnapshot& before) const {
    PresolveSnapshot d;
    d.nodes_in = nodes_in - before.nodes_in;
    d.nodes_out = nodes_out - before.nodes_out;
    d.choices_in = choices_in - before.choices_in;
    d.choices_out = choices_out - before.choices_out;
    d.edges_in = edges_in - before.edges_in;
    d.edges_out = edges_out - before.edges_out;
    d.optimal = optimal - before.optimal;
    d.aborted = aborted - before.aborted;
    d.explored = explored - before.explored;
    d.gap_ppm_sum = gap_ppm_sum - before.gap_ppm_sum;
    d.portfolio_races = portfolio_races - before.portfolio_races;
    d.portfolio_handoffs = portfolio_handoffs - before.portfolio_handoffs;
    d.portfolio_prunes = portfolio_prunes - before.portfolio_prunes;
    d.elim_solved = elim_solved - before.elim_solved;
    d.elim_bailed = elim_bailed - before.elim_bailed;
    d.elim_cells = elim_cells - before.elim_cells;
    d.elim_micros = elim_micros - before.elim_micros;
    d.plan_micros = plan_micros - before.plan_micros;
    d.presolve_micros = presolve_micros - before.presolve_micros;
    d.bnb_micros = bnb_micros - before.bnb_micros;
    d.build_micros = build_micros - before.build_micros;
    d.seed_micros = seed_micros - before.seed_micros;
    d.legacy_micros = legacy_micros - before.legacy_micros;
    d.enum_micros = enum_micros - before.enum_micros;
    d.edge_micros = edge_micros - before.edge_micros;
    return d;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace alpa;
  using namespace alpa::bench;

  const BenchFlags flags = ParseBenchFlags(argc, argv, 1);
  InitBench(flags);

  // The fig8 GPT single-host setting, same as table4_breakdown: enough
  // distinct (layer, variant) ILP solves to make solver time dominate.
  const std::vector<GptBenchmarkCase> cases = GptPaperCases();
  const GptBenchmarkCase& bench_case = cases[2];
  GptConfig config = bench_case.config;
  config.microbatch = 8;
  const ClusterSpec cluster = ClusterFor(bench_case.num_gpus);

  const auto compile = [&](IlpEngine engine) {
    Graph graph = BuildGpt(config);
    ParallelizeOptions options = BaselineOptionTemplate();
    options.inter.num_microbatches =
        static_cast<int>(bench_case.global_batch / config.microbatch);
    options.inter.target_layers = 16;
    options.inter.compile_threads = flags.threads;
    options.inter.profiler.intra.solver.engine = engine;
    return Parallelize(graph, cluster, options);
  };

  std::printf("=== compile_speed: legacy vs staged vs portfolio solver, %s on %d GPUs ===\n",
              bench_case.name.c_str(), bench_case.num_gpus);
  std::printf("%-14s %10s | %8s %8s %8s | %10s %12s %10s | %6s %6s %10s\n", "run", "total(s)",
              "solves", "hits", "misses", "nodes", "choices", "edges", "opt", "abort",
              "explored");

  JsonReport report("compile_speed");
  struct RunResult {
    StatusOr<ParallelPlan> plan = Status::Internal("not run");
    double seconds = 0.0;
  };

  const auto run = [&](const char* name, IlpEngine engine, bool cold) {
    if (cold) {
      IlpMemoCache::Global().Clear();  // Also clears the solver core memo.
    }
    // Per-run worst gap: the metric's high-water mark since this reset.
    Metrics::Get("ilp/outcome/gap_ppm_max")->Reset();
    const PresolveSnapshot before = PresolveSnapshot::Take();
    RunResult r;
    r.plan = compile(engine);
    if (!r.plan.ok()) {
      std::printf("%-14s compilation failed: %s\n", name, r.plan.status().ToString().c_str());
      return r;
    }
    const PresolveSnapshot d = PresolveSnapshot::Take().Delta(before);
    const CompileStats& stats = r.plan->compile_stats;
    r.seconds = stats.total_seconds;
    std::printf("%-14s %10.3f | %8lld %8lld %8lld | %5lld>%-5lld %6lld>%-6lld %5lld>%-5lld"
                " | %6lld %6lld %10lld\n",
                name, stats.total_seconds, static_cast<long long>(stats.ilp_solves),
                static_cast<long long>(stats.ilp_cache_hits),
                static_cast<long long>(stats.ilp_cache_misses), d.nodes_in, d.nodes_out,
                d.choices_in, d.choices_out, d.edges_in, d.edges_out, d.optimal, d.aborted,
                d.explored);
    if (d.elim_solved + d.elim_bailed > 0) {
      std::printf("%-14s elimination: %lld solved, %lld bailed to B&B, %lld table cells,"
                  " %.3fs tables + %.3fs ordering\n",
                  "", d.elim_solved, d.elim_bailed, d.elim_cells, d.elim_micros * 1e-6,
                  d.plan_micros * 1e-6);
      std::printf("%-14s stage time: presolve %.3fs, B&B %.3fs\n", "",
                  d.presolve_micros * 1e-6, d.bnb_micros * 1e-6);
    }
    if (d.build_micros + d.legacy_micros > 0) {
      std::printf("%-14s pipeline: build %.3fs (enum %.3fs, edges %.3fs),"
                  " seed block %.3fs, legacy solve %.3fs\n",
                  "", d.build_micros * 1e-6, d.enum_micros * 1e-6, d.edge_micros * 1e-6,
                  d.seed_micros * 1e-6, d.legacy_micros * 1e-6);
    }
    const double max_gap = Metrics::MaxValue("ilp/outcome/gap_ppm_max") * 1e-6;
    const double mean_gap = d.aborted > 0 ? (d.gap_ppm_sum * 1e-6) / d.aborted : 0.0;
    if (d.aborted > 0) {
      std::printf("%-14s anytime: max gap %.4f%%, mean gap %.4f%% over %lld aborts\n", "",
                  max_gap * 100.0, mean_gap * 100.0, d.aborted);
    }
    if (d.portfolio_races > 0) {
      std::printf("%-14s portfolio: %lld races, %lld incumbent handoffs,"
                  " %lld root branches bound-pruned\n",
                  "", d.portfolio_races, d.portfolio_handoffs, d.portfolio_prunes);
    }
    std::fflush(stdout);
    report.AddRow()
        .Str("run", name)
        .Bool("cold", cold)
        .Num("total_seconds", stats.total_seconds)
        .Int("ilp_solves", static_cast<long long>(stats.ilp_solves))
        .Int("ilp_cache_hits", static_cast<long long>(stats.ilp_cache_hits))
        .Int("ilp_cache_misses", static_cast<long long>(stats.ilp_cache_misses))
        .Int("presolve_nodes_in", d.nodes_in)
        .Int("presolve_nodes_out", d.nodes_out)
        .Int("presolve_choices_in", d.choices_in)
        .Int("presolve_choices_out", d.choices_out)
        .Int("presolve_edges_in", d.edges_in)
        .Int("presolve_edges_out", d.edges_out)
        .Int("solves_optimal", d.optimal)
        .Int("solves_aborted", d.aborted)
        .Num("max_optimality_gap", max_gap)
        .Num("mean_optimality_gap", mean_gap)
        .Int("search_nodes_explored", d.explored)
        .Int("elim_solved", d.elim_solved)
        .Int("elim_bailed", d.elim_bailed)
        .Int("elim_table_cells", d.elim_cells)
        .Int("portfolio_races", d.portfolio_races)
        .Int("portfolio_incumbent_handoffs", d.portfolio_handoffs)
        .Int("portfolio_bound_prunes", d.portfolio_prunes);
    return r;
  };

  // Two cold runs per engine; the speedup summary uses the per-engine
  // minimum (standard wall-clock practice: the min measures the code, the
  // spread measures ambient machine load). The staged and portfolio colds
  // are interleaved so in-process drift (allocator state, cache history —
  // later compiles in one process measure a few percent slower) lands on
  // both engines instead of whichever happens to run last. Each warm run
  // stays directly after its own engine's cold: a warm compile must hit
  // the engine-salted memo entries that cold run just wrote.
  const RunResult legacy = run("legacy cold", IlpEngine::kLegacy, /*cold=*/true);
  const RunResult legacy2 = run("legacy cold#2", IlpEngine::kLegacy, /*cold=*/true);
  const RunResult staged = run("staged cold", IlpEngine::kStaged, /*cold=*/true);
  const RunResult portfolio = run("portfolio cold", IlpEngine::kPortfolio, /*cold=*/true);
  const RunResult staged2 = run("staged cold#2", IlpEngine::kStaged, /*cold=*/true);
  const RunResult warm = run("staged warm", IlpEngine::kStaged, /*cold=*/false);
  const RunResult portfolio2 = run("portfolio cold#2", IlpEngine::kPortfolio, /*cold=*/true);
  const RunResult pwarm = run("portfolio warm", IlpEngine::kPortfolio, /*cold=*/false);
  if (!legacy.plan.ok() || !legacy2.plan.ok() || !staged.plan.ok() || !staged2.plan.ok() ||
      !warm.plan.ok() || !portfolio.plan.ok() || !portfolio2.plan.ok() || !pwarm.plan.ok()) {
    return 1;
  }

  // Cold and warm compiles of the same engine must agree bit-for-bit: the
  // pipeline is deterministic and every memo hit is exact. Cross-engine
  // plan equivalence is a per-problem property (equal objectives, identical
  // choices when both prove optimality) verified by the randomized
  // cross-check suite, not a whole-compile one: budget-aborted cells may
  // legitimately settle on different incumbents.
  const bool identical = PlanEquals(staged.plan->pipeline, staged2.plan->pipeline) &&
                         PlanEquals(staged.plan->pipeline, warm.plan->pipeline);
  const bool portfolio_identical =
      PlanEquals(portfolio.plan->pipeline, portfolio2.plan->pipeline) &&
      PlanEquals(portfolio.plan->pipeline, pwarm.plan->pipeline);
  const double legacy_cold = std::min(legacy.seconds, legacy2.seconds);
  const double staged_cold = std::min(staged.seconds, staged2.seconds);
  const double portfolio_cold = std::min(portfolio.seconds, portfolio2.seconds);
  const double cold_speedup = staged_cold > 0.0 ? legacy_cold / staged_cold : 0.0;
  const double warm_speedup = warm.seconds > 0.0 ? legacy_cold / warm.seconds : 0.0;
  const double portfolio_vs_staged = portfolio_cold > 0.0 ? staged_cold / portfolio_cold : 0.0;
  std::printf("\nplans bit-identical (staged cold vs warm): %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("plans bit-identical (portfolio cold vs warm): %s\n",
              portfolio_identical ? "yes" : "NO (BUG)");
  std::printf("cold-compile speedup (staged vs legacy): %.2fx\n", cold_speedup);
  std::printf("warm-compile speedup (warm vs legacy cold): %.2fx\n", warm_speedup);
  std::printf("cold-compile speedup (portfolio vs staged): %.2fx\n", portfolio_vs_staged);

  report.AddRow()
      .Str("run", "summary")
      .Bool("plans_identical", identical)
      .Bool("portfolio_plans_identical", portfolio_identical)
      .Num("legacy_cold_seconds", legacy_cold)
      .Num("staged_cold_seconds", staged_cold)
      .Num("portfolio_cold_seconds", portfolio_cold)
      .Num("warm_seconds", warm.seconds)
      .Num("portfolio_warm_seconds", pwarm.seconds)
      .Num("cold_speedup", cold_speedup)
      .Num("warm_speedup", warm_speedup)
      .Num("portfolio_vs_staged_speedup", portfolio_vs_staged);
  if (!report.Write(flags.json_path)) {
    return 1;
  }
  return identical && portfolio_identical ? 0 : 1;
}
