#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/cross_mesh.h"

namespace alpa {
namespace {

class CrossMeshTest : public ::testing::Test {
 protected:
  CrossMeshTest() : cluster_(ClusterSpec::AwsP3(4, 8)) {}

  DeviceMesh Mesh(int host_begin, int hosts, int devices, std::array<int, 2> logical) {
    MeshPlacement placement;
    placement.host_begin = host_begin;
    placement.shape = SubmeshShape{hosts, devices};
    return DeviceMesh::Create(cluster_, placement, logical);
  }

  ClusterSpec cluster_;
  TensorShape shape_{64, 1024};  // 256 KB fp32.
  static constexpr int64_t kBytes = 4;
};

TEST_F(CrossMeshTest, SignalOnlyIsOneByte) {
  const DeviceMesh src = Mesh(0, 1, 8, {1, 8});
  const DeviceMesh dst = Mesh(1, 1, 8, {1, 8});
  const auto plan =
      PlanCrossMeshResharding(src, ShardingSpec::Replicated(2), dst, ShardingSpec::Replicated(2),
                              shape_, kBytes, ReshardStrategy::kSignalOnly);
  EXPECT_EQ(plan.sends.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.total_p2p_bytes, 1.0);
}

TEST_F(CrossMeshTest, EqualMeshesShardedTransferIsTileSized) {
  // Both meshes shard dim 0 along axis 1: each device fetches exactly its
  // tile from the matching peer (Megatron's trivial case, Fig. 7a).
  const ShardingSpec spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const DeviceMesh src = Mesh(0, 1, 8, {1, 8});
  const DeviceMesh dst = Mesh(1, 1, 8, {1, 8});
  const auto plan = PlanCrossMeshResharding(src, spec, dst, spec, shape_, kBytes,
                                            ReshardStrategy::kNaiveSendRecv);
  EXPECT_EQ(plan.sends.size(), 8u);
  EXPECT_DOUBLE_EQ(plan.total_p2p_bytes, static_cast<double>(shape_.elements()) * kBytes);
}

TEST_F(CrossMeshTest, NaiveReplicatedDestinationSendsNCopies) {
  // Destination replicates: naive send/recv moves the tensor once per
  // destination device.
  const DeviceMesh src = Mesh(0, 1, 4, {1, 4});
  const DeviceMesh dst = Mesh(1, 1, 4, {1, 4});
  const ShardingSpec sharded = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const auto plan = PlanCrossMeshResharding(src, sharded, dst, ShardingSpec::Replicated(2),
                                            shape_, kBytes, ReshardStrategy::kNaiveSendRecv);
  const double tensor_bytes = static_cast<double>(shape_.elements()) * kBytes;
  EXPECT_DOUBLE_EQ(plan.total_p2p_bytes, 4.0 * tensor_bytes);
  EXPECT_DOUBLE_EQ(plan.local_allgather_time, 0.0);
}

TEST_F(CrossMeshTest, LocalAllGatherCutsSlowPathTraffic) {
  const DeviceMesh src = Mesh(0, 1, 4, {1, 4});
  const DeviceMesh dst = Mesh(1, 1, 4, {1, 4});
  const ShardingSpec sharded = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const auto naive = PlanCrossMeshResharding(src, sharded, dst, ShardingSpec::Replicated(2),
                                             shape_, kBytes, ReshardStrategy::kNaiveSendRecv);
  const auto optimized = PlanCrossMeshResharding(src, sharded, dst, ShardingSpec::Replicated(2),
                                                 shape_, kBytes, ReshardStrategy::kLocalAllGather);
  // Fig. 7c: the slow path carries the tensor once; the rest rides NVLink.
  EXPECT_LT(optimized.total_p2p_bytes, naive.total_p2p_bytes / 2.0);
  EXPECT_GT(optimized.local_allgather_time, 0.0);
  EXPECT_LT(CrossMeshReshardTime(src, sharded, dst, ShardingSpec::Replicated(2), shape_, kBytes,
                                 ReshardStrategy::kLocalAllGather),
            CrossMeshReshardTime(src, sharded, dst, ShardingSpec::Replicated(2), shape_, kBytes,
                                 ReshardStrategy::kNaiveSendRecv));
}

TEST_F(CrossMeshTest, UnequalMeshShapes) {
  // (1,4) -> (2,8): the generalized case of Fig. 7b/c.
  const DeviceMesh src = Mesh(0, 1, 4, {1, 4});
  const DeviceMesh dst = Mesh(1, 2, 8, {2, 8});
  const ShardingSpec src_spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const ShardingSpec dst_spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const auto plan = PlanCrossMeshResharding(src, src_spec, dst, dst_spec, shape_, kBytes,
                                            ReshardStrategy::kLocalAllGather);
  EXPECT_GT(plan.sends.size(), 0u);
  // Every destination device id belongs to the destination mesh.
  const auto dst_ids = dst.DeviceIds();
  for (const CrossMeshTask& task : plan.sends) {
    EXPECT_NE(std::find(dst_ids.begin(), dst_ids.end(), task.dst_device), dst_ids.end());
  }
}

TEST_F(CrossMeshTest, CrossHostSlowerThanSameHost) {
  const DeviceMesh src = Mesh(0, 1, 4, {1, 4});
  const DeviceMesh dst_near = Mesh(0, 1, 4, {1, 4});  // Same host (hypothetical).
  const DeviceMesh dst_far = Mesh(2, 1, 4, {1, 4});
  const ShardingSpec spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const double near_time = CrossMeshReshardTime(src, spec, dst_near, spec, shape_, kBytes,
                                                ReshardStrategy::kNaiveSendRecv);
  const double far_time = CrossMeshReshardTime(src, spec, dst_far, spec, shape_, kBytes,
                                               ReshardStrategy::kNaiveSendRecv);
  EXPECT_LT(near_time, far_time);
}

TEST_F(CrossMeshTest, SameHostRangeMixedTrafficUsesPerTaskClassification) {
  // Two (2 hosts x 1 device) meshes over the SAME host range. Resharding
  // sharded -> replicated keeps each device's own half local and fetches
  // the other half across hosts: two same-host tasks and two NIC crossings.
  // The old plan-wide flag derived "intra-host" from the identical
  // placements and billed the crossings at NVLink speed; per-task
  // classification must price them with the inter-host formula.
  const DeviceMesh src = Mesh(0, 2, 1, {2, 1});
  const DeviceMesh dst = Mesh(0, 2, 1, {2, 1});
  const ShardingSpec sharded = ShardingSpec::OneDim(2, 0, DimSharding::kS0);
  const auto plan = PlanCrossMeshResharding(src, sharded, dst, ShardingSpec::Replicated(2),
                                            shape_, kBytes, ReshardStrategy::kNaiveSendRecv);
  ASSERT_EQ(plan.sends.size(), 4u);
  int inter_tasks = 0;
  int intra_tasks = 0;
  for (const CrossMeshTask& task : plan.sends) {
    const bool crosses = task.src_device / cluster_.devices_per_host !=
                         task.dst_device / cluster_.devices_per_host;
    (crosses ? inter_tasks : intra_tasks) += 1;
  }
  EXPECT_EQ(inter_tasks, 2);
  EXPECT_EQ(intra_tasks, 2);

  // Pin the estimate to the closed form: each host pushes half the tensor
  // through its NIC and keeps half local; each device handles 2 inter and
  // 2 intra messages.
  const double half = static_cast<double>(shape_.elements()) * kBytes / 2.0;
  const double expected = half / cluster_.inter_host_bandwidth +
                          half / cluster_.intra_host_bandwidth +
                          2 * cluster_.inter_host_alpha + 2 * cluster_.intra_host_alpha;
  EXPECT_DOUBLE_EQ(plan.EstimateTime(cluster_), expected);
}

TEST_F(CrossMeshTest, PureCrossHostPlanPinnedToInterHostFormula) {
  // Disjoint host ranges: every task crosses hosts, so the estimate must be
  // exactly the inter-host NIC bottleneck + per-message latency.
  const DeviceMesh src = Mesh(0, 1, 4, {1, 4});
  const DeviceMesh dst = Mesh(1, 1, 4, {1, 4});
  const ShardingSpec spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const auto plan = PlanCrossMeshResharding(src, spec, dst, spec, shape_, kBytes,
                                            ReshardStrategy::kNaiveSendRecv);
  ASSERT_EQ(plan.sends.size(), 4u);  // Matching peers, one tile each.
  const double tile = static_cast<double>(shape_.elements()) * kBytes / 4.0;
  // All four tiles leave host 0 through one NIC; each device sees 1 message.
  const double expected =
      4.0 * tile / cluster_.inter_host_bandwidth + cluster_.inter_host_alpha;
  EXPECT_DOUBLE_EQ(plan.EstimateTime(cluster_), expected);
}

TEST_F(CrossMeshTest, PlanCoversDestinationTiles) {
  // Volume conservation: bytes received by each destination device must
  // equal its tile size (naive mode, no replication source overlap).
  const DeviceMesh src = Mesh(0, 1, 8, {2, 4});
  const DeviceMesh dst = Mesh(2, 1, 8, {4, 2});
  const ShardingSpec src_spec =
      ShardingSpec::Make({DimSharding::kS0, DimSharding::kS1});
  const ShardingSpec dst_spec =
      ShardingSpec::Make({DimSharding::kS1, DimSharding::kS0});
  const auto plan = PlanCrossMeshResharding(src, src_spec, dst, dst_spec, shape_, kBytes,
                                            ReshardStrategy::kNaiveSendRecv);
  std::map<int, double> received;
  for (const CrossMeshTask& task : plan.sends) {
    received[task.dst_device] += task.bytes;
  }
  const double tile_bytes = static_cast<double>(shape_.elements()) * kBytes / 8.0;
  ASSERT_EQ(received.size(), 8u);
  for (const auto& [device, bytes] : received) {
    EXPECT_DOUBLE_EQ(bytes, tile_bytes);
  }
}

}  // namespace
}  // namespace alpa
