// ThreadSanitizer harness for the parallel compilation pipeline.
//
// Compiles a tiny GPT serially and with 4 worker threads under
// -fsanitize=thread (this whole binary, library sources included, is
// TSan-instrumented by tests/CMakeLists.txt) and checks PlanEquals. Any
// data race in the profiler's once_flag cells, the memo cache, the stage
// DP's parallel precompute, or the pool itself fails the run. Kept small:
// TSan slows execution by an order of magnitude.
#include <cstdio>

#include "src/inter/inter_pass.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"

int main() {
  using namespace alpa;
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 2;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  InterOpOptions options;
  options.num_microbatches = 4;
  options.target_layers = 2;
  options.profiler.intra.solver.max_search_nodes = 5'000;

  IlpMemoCache::Global().Clear();
  Graph serial_graph = BuildGpt(config);
  options.compile_threads = 1;
  const CompiledPipeline serial = RunInterOpPass(serial_graph, cluster, options);

  IlpMemoCache::Global().Clear();
  Graph parallel_graph = BuildGpt(config);
  options.compile_threads = 4;
  const CompiledPipeline parallel = RunInterOpPass(parallel_graph, cluster, options);

  if (!serial.feasible || !parallel.feasible) {
    std::fprintf(stderr, "FAIL: compilation infeasible (serial=%d parallel=%d)\n",
                 serial.feasible, parallel.feasible);
    return 1;
  }
  if (!PlanEquals(serial, parallel)) {
    std::fprintf(stderr, "FAIL: parallel plan differs from serial plan\n");
    return 1;
  }
  std::printf("OK: plans identical under TSan (%lld solves serial, %lld parallel)\n",
              static_cast<long long>(serial.stats.ilp_solves),
              static_cast<long long>(parallel.stats.ilp_solves));
  return 0;
}
