// ThreadSanitizer harness for the parallel compilation pipeline.
//
// Compiles a tiny GPT serially and with 4 worker threads under
// -fsanitize=thread (this whole binary, library sources included, is
// TSan-instrumented by tests/CMakeLists.txt) and checks PlanEquals. Any
// data race in the profiler's once_flag cells, the memo cache, the stage
// DP's parallel precompute, or the pool itself fails the run. Tracing is
// enabled for both compiles so the recorder's lane buffers, the metrics
// registry, and the exporter run under TSan too, and the "compile"-category
// span multiset must be identical across thread counts. Kept small: TSan
// slows execution by an order of magnitude.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/inter/inter_pass.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"
#include "src/solver/portfolio.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace {

// The abort-prone instance from the flat branch & bound's redistribution
// tests: dense enough that every portfolio round does real work.
alpa::IlpProblem AbortProneProblem() {
  alpa::Rng rng(45);
  alpa::IlpProblem problem;
  const int nodes = 14;
  problem.node_costs.resize(nodes);
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(5));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[v].push_back(rng.NextDouble(0, 10));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() > 0.8) {
        continue;
      }
      alpa::IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[u].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[v].size(); ++j) {
          row.push_back(rng.NextDouble(0, 5));
        }
      }
      problem.edges.push_back(edge);
    }
  }
  return problem;
}

// Races GRASP restarts, annealing chains, and root-parallel branch & bound
// over the pool under TSan, and checks the 4-thread result is bit-identical
// to the serial one. Returns false on any divergence.
bool CheckPortfolioRace() {
  const alpa::IlpProblem problem = AbortProneProblem();
  alpa::PortfolioOptions options;
  options.budget = 20'000;  // Abort-prone: the full search needs more.
  const alpa::PortfolioResult serial = alpa::SolvePortfolio(problem, options);

  alpa::ThreadPool pool(4);
  alpa::PortfolioOptions pooled = options;
  pooled.pool = &pool;
  const alpa::PortfolioResult parallel = alpa::SolvePortfolio(problem, pooled);

  if (!serial.feasible || !parallel.feasible) {
    std::fprintf(stderr, "FAIL: portfolio infeasible (serial=%d parallel=%d)\n",
                 serial.feasible, parallel.feasible);
    return false;
  }
  if (serial.choice != parallel.choice || serial.objective != parallel.objective ||
      serial.lower_bound != parallel.lower_bound || serial.explored != parallel.explored) {
    std::fprintf(stderr, "FAIL: portfolio result differs across thread counts\n");
    return false;
  }
  return true;
}

// Multiset of "category/name(args)" for compile-category spans. Pool-category
// spans ("pool_task", "profiling_sweep") vary with the thread count by
// design and are excluded.
std::map<std::string, int> CompileSpanSet() {
  std::map<std::string, int> set;
  for (const alpa::TraceEvent& e : alpa::Trace::Snapshot()) {
    if (!e.virtual_time && e.category == "compile") {
      ++set[e.name + "(" + e.args + ")"];
    }
  }
  return set;
}

}  // namespace

int main() {
  using namespace alpa;
  if (!CheckPortfolioRace()) {
    return 1;
  }
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 2;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  InterOpOptions options;
  options.num_microbatches = 4;
  options.target_layers = 2;
  options.profiler.intra.solver.max_search_nodes = 5'000;

  if (Trace::kCompiledIn) {
    Trace::Enable();
  }

  IlpMemoCache::Global().Clear();
  Trace::Clear();
  Graph serial_graph = BuildGpt(config);
  options.compile_threads = 1;
  const CompiledPipeline serial = RunInterOpPass(serial_graph, cluster, options);
  const std::map<std::string, int> serial_spans = CompileSpanSet();

  IlpMemoCache::Global().Clear();
  Trace::Clear();
  Graph parallel_graph = BuildGpt(config);
  options.compile_threads = 4;
  const CompiledPipeline parallel = RunInterOpPass(parallel_graph, cluster, options);
  const std::map<std::string, int> parallel_spans = CompileSpanSet();

  if (!serial.feasible || !parallel.feasible) {
    std::fprintf(stderr, "FAIL: compilation infeasible (serial=%d parallel=%d)\n",
                 serial.feasible, parallel.feasible);
    return 1;
  }
  if (!PlanEquals(serial, parallel)) {
    std::fprintf(stderr, "FAIL: parallel plan differs from serial plan\n");
    return 1;
  }
  if (Trace::kCompiledIn) {
    if (serial_spans.empty()) {
      std::fprintf(stderr, "FAIL: tracing enabled but no compile spans recorded\n");
      return 1;
    }
    if (serial_spans != parallel_spans) {
      std::fprintf(stderr, "FAIL: compile-span set differs across thread counts\n");
      for (const auto& [key, count] : serial_spans) {
        auto it = parallel_spans.find(key);
        if (it == parallel_spans.end() || it->second != count) {
          std::fprintf(stderr, "  serial has %dx %s\n", count, key.c_str());
        }
      }
      for (const auto& [key, count] : parallel_spans) {
        auto it = serial_spans.find(key);
        if (it == serial_spans.end() || it->second != count) {
          std::fprintf(stderr, "  parallel has %dx %s\n", count, key.c_str());
        }
      }
      return 1;
    }
    // Exercise the exporter under TSan as well.
    const Status written = Trace::WriteJson("tsan_trace_out.json");
    if (!written.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  std::printf("OK: plans identical under TSan (%lld solves serial, %lld parallel, "
              "%zu compile span kinds)\n",
              static_cast<long long>(serial.stats.ilp_solves),
              static_cast<long long>(parallel.stats.ilp_solves), serial_spans.size());
  return 0;
}
