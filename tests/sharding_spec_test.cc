#include <gtest/gtest.h>

#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"
#include "src/spec/sharding_spec.h"

namespace alpa {
namespace {

// 2x2 mesh inside one host, as in Fig. 5 / Table 1.
class ShardingSpecTest : public ::testing::Test {
 protected:
  ShardingSpecTest() : cluster_(ClusterSpec::AwsP3(1, 4)) {
    MeshPlacement placement;
    placement.shape = SubmeshShape{1, 4};
    mesh_ = std::make_unique<DeviceMesh>(DeviceMesh::Create(cluster_, placement, {2, 2}));
  }

  static ShardingSpec Spec(DimSharding d0, DimSharding d1) {
    return ShardingSpec::Make({d0, d1});
  }

  ClusterSpec cluster_;
  std::unique_ptr<DeviceMesh> mesh_;
  // A 1024x1024 fp32 tensor: M = 4 MiB.
  TensorShape shape_{1024, 1024};
  static constexpr int64_t kDtypeBytes = 4;
  static constexpr double kM = 1024.0 * 1024.0 * 4;
};

constexpr DimSharding R = DimSharding::kR;
constexpr DimSharding S0 = DimSharding::kS0;
constexpr DimSharding S1 = DimSharding::kS1;
constexpr DimSharding S01 = DimSharding::kS01;

TEST_F(ShardingSpecTest, ToString) {
  EXPECT_EQ(Spec(R, R).ToString(), "RR");
  EXPECT_EQ(Spec(S0, R).ToString(), "S0R");
  EXPECT_EQ(Spec(R, S0).ToString(), "RS0");
  EXPECT_EQ(Spec(S0, S1).ToString(), "S0S1");
  EXPECT_EQ(Spec(S01, R).ToString(), "S01R");
}

TEST_F(ShardingSpecTest, EnumerateRank2) {
  // Fig. 5: RR, S0R, RS0, S1R, RS1, S0S1, S1S0, S01R, RS01 = 9 specs.
  EXPECT_EQ(ShardingSpec::Enumerate(2).size(), 9u);
}

TEST_F(ShardingSpecTest, EnumerateRank3) {
  // Axis0 choice: none or 3 dims; axis1 same; S01 merges diagonal: 16.
  EXPECT_EQ(ShardingSpec::Enumerate(3).size(), 16u);
}

TEST_F(ShardingSpecTest, ShardedBytes) {
  EXPECT_EQ(Spec(R, R).ShardedBytes(shape_, kDtypeBytes, *mesh_), static_cast<int64_t>(kM));
  EXPECT_EQ(Spec(S0, R).ShardedBytes(shape_, kDtypeBytes, *mesh_), static_cast<int64_t>(kM / 2));
  EXPECT_EQ(Spec(S0, S1).ShardedBytes(shape_, kDtypeBytes, *mesh_),
            static_cast<int64_t>(kM / 4));
  EXPECT_EQ(Spec(S01, R).ShardedBytes(shape_, kDtypeBytes, *mesh_),
            static_cast<int64_t>(kM / 4));
}

TEST_F(ShardingSpecTest, Validity) {
  EXPECT_TRUE(Spec(S0, S1).IsValidFor(shape_, *mesh_));
  // Dim of extent 3 cannot be split 2 ways.
  EXPECT_FALSE(Spec(S0, R).IsValidFor(TensorShape({3, 8}), *mesh_));
  EXPECT_TRUE(Spec(R, S0).IsValidFor(TensorShape({3, 8}), *mesh_));
}

TEST_F(ShardingSpecTest, TileSlices) {
  // RS0 on a 2x2 mesh: column-partitioned; rows of devices hold the same
  // partition (Fig. 5).
  const ShardingSpec spec = Spec(R, S0);
  auto t00 = spec.TileSlice(shape_, *mesh_, 0, 0);
  auto t01 = spec.TileSlice(shape_, *mesh_, 0, 1);
  auto t10 = spec.TileSlice(shape_, *mesh_, 1, 0);
  EXPECT_EQ(t00[0], (std::pair<int64_t, int64_t>{0, 1024}));
  EXPECT_EQ(t00[1], (std::pair<int64_t, int64_t>{0, 512}));
  EXPECT_EQ(t00, t01);  // Replicated along axis 1.
  EXPECT_EQ(t10[1], (std::pair<int64_t, int64_t>{512, 1024}));
}

TEST_F(ShardingSpecTest, TileSlicesS01) {
  const ShardingSpec spec = Spec(S01, R);
  auto t = spec.TileSlice(shape_, *mesh_, 1, 1);  // Flat index 3.
  EXPECT_EQ(t[0], (std::pair<int64_t, int64_t>{768, 1024}));
}

// --- Table 1 rows. all-gather(x, i) denotes gathering x bytes along mesh
// axis i; mesh is 2x2 so n0 = n1 = 2. ---

TEST_F(ShardingSpecTest, Table1Row1_RRtoS0S1_Free) {
  EXPECT_DOUBLE_EQ(ReshardCost(Spec(R, R), Spec(S0, S1), shape_, kDtypeBytes, *mesh_), 0.0);
}

TEST_F(ShardingSpecTest, Table1Row2_S0RtoRR_AllGatherM0) {
  EXPECT_DOUBLE_EQ(ReshardCost(Spec(S0, R), Spec(R, R), shape_, kDtypeBytes, *mesh_),
                   mesh_->AllGatherTime(kM, 0));
}

TEST_F(ShardingSpecTest, Table1Row3_S0S1toS0R_AllGatherHalf1) {
  EXPECT_DOUBLE_EQ(ReshardCost(Spec(S0, S1), Spec(S0, R), shape_, kDtypeBytes, *mesh_),
                   mesh_->AllGatherTime(kM / 2, 1));
}

TEST_F(ShardingSpecTest, Table1Row4_S0RtoRS0_AllToAllM0) {
  EXPECT_DOUBLE_EQ(ReshardCost(Spec(S0, R), Spec(R, S0), shape_, kDtypeBytes, *mesh_),
                   mesh_->AllToAllTime(kM, 0));
}

TEST_F(ShardingSpecTest, Table1Row5_S0S1toS01R_AllToAllHalf1) {
  EXPECT_DOUBLE_EQ(ReshardCost(Spec(S0, S1), Spec(S01, R), shape_, kDtypeBytes, *mesh_),
                   mesh_->AllToAllTime(kM / 2, 1));
}

TEST_F(ShardingSpecTest, ReshardIdentityFree) {
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(2)) {
    EXPECT_DOUBLE_EQ(ReshardCost(spec, spec, shape_, kDtypeBytes, *mesh_), 0.0)
        << spec.ToString();
  }
}

TEST_F(ShardingSpecTest, ReshardFullGatherS01) {
  // S01R -> RR: hierarchical all-gather.
  const double cost = ReshardCost(Spec(S01, R), Spec(R, R), shape_, kDtypeBytes, *mesh_);
  EXPECT_DOUBLE_EQ(cost, mesh_->AllGatherTime(kM / 2, 1) + mesh_->AllGatherTime(kM, 0));
}

TEST_F(ShardingSpecTest, ReshardNonNegativeProperty) {
  for (const ShardingSpec& src : ShardingSpec::Enumerate(2)) {
    for (const ShardingSpec& dst : ShardingSpec::Enumerate(2)) {
      const double cost = ReshardCost(src, dst, shape_, kDtypeBytes, *mesh_);
      EXPECT_GE(cost, 0.0) << src.ToString() << "->" << dst.ToString();
      // Gathering to replicated is always at least as expensive as any
      // other destination reachable by slicing afterwards.
      const double to_replicated =
          ReshardCost(src, ShardingSpec::Replicated(2), shape_, kDtypeBytes, *mesh_);
      EXPECT_LE(cost, to_replicated + 1e-12)
          << src.ToString() << "->" << dst.ToString();
    }
  }
}

TEST_F(ShardingSpecTest, DimForAxis) {
  EXPECT_EQ(Spec(S0, S1).DimForAxis(0), 0);
  EXPECT_EQ(Spec(S0, S1).DimForAxis(1), 1);
  EXPECT_EQ(Spec(R, S0).DimForAxis(0), 1);
  EXPECT_EQ(Spec(R, S0).DimForAxis(1), -1);
  EXPECT_EQ(Spec(S01, R).DimForAxis(0), 0);
  EXPECT_EQ(Spec(S01, R).DimForAxis(1), 0);
}

}  // namespace
}  // namespace alpa
