#include <gtest/gtest.h>

#include "src/support/math_util.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace alpa {
namespace {

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(Strings, StrJoin) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(StrJoin(v, ","), "1,2,3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
  EXPECT_EQ(StrJoin(std::vector<int>{7}, ","), "7");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(0.0015), "1.500 ms");
  EXPECT_EQ(HumanSeconds(2e-6), "2.000 us");
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(1, 8), 1);
  EXPECT_EQ(CeilDiv(0, 8), 0);
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(-2));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(MathUtil, Log2Floor) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(64), 6);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

}  // namespace
}  // namespace alpa
