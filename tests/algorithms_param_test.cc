// Parameterized sweeps over operators x meshes: every enumerated parallel
// algorithm must be internally consistent (valid specs, nonnegative costs,
// mesh axes used at most once, replicated fallback present).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/graph/backward.h"
#include "src/intra/algorithms.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"

namespace alpa {
namespace {

enum class Model { kGpt, kMoe, kWideResNet };

using Param = std::tuple<Model, int, int>;  // (model, logical d0, logical d1)

Graph BuildModel(Model model) {
  switch (model) {
    case Model::kGpt: {
      GptConfig config;
      config.hidden = 256;
      config.num_layers = 2;
      config.num_heads = 8;
      config.microbatch = 4;
      config.seq_len = 128;
      config.vocab = 1024;
      return BuildGpt(config);
    }
    case Model::kMoe: {
      MoeConfig config;
      config.hidden = 128;
      config.num_layers = 2;
      config.num_heads = 4;
      config.num_experts = 4;
      config.microbatch = 4;
      config.seq_len = 128;
      config.vocab = 512;
      return BuildMoe(config);
    }
    case Model::kWideResNet: {
      WideResNetConfig config;
      config.microbatch = 8;
      config.base_channels = 32;
      config.width_factor = 2;
      return BuildWideResNet(config);
    }
  }
  return Graph();
}

class AlgorithmSweep : public ::testing::TestWithParam<Param> {
 protected:
  AlgorithmSweep() : cluster_(ClusterSpec::AwsP3(1, 8)) {
    const auto [model, d0, d1] = GetParam();
    graph_ = BuildModel(model);
    MeshPlacement placement;
    placement.shape = SubmeshShape{1, d0 * d1};
    mesh_ = std::make_unique<DeviceMesh>(DeviceMesh::Create(cluster_, placement, {d0, d1}));
  }

  ClusterSpec cluster_;
  Graph graph_;
  std::unique_ptr<DeviceMesh> mesh_;
};

TEST_P(AlgorithmSweep, EveryOpHasAtLeastOneAlgorithm) {
  for (const Operator& op : graph_.ops()) {
    const auto algorithms =
        EnumerateAlgorithms(op, graph_, *mesh_, cluster_.device, Precision::kFloat16);
    EXPECT_GT(algorithms.size(), 0u) << op.ToString();
  }
}

TEST_P(AlgorithmSweep, SpecsMatchShapesAndAreValid) {
  for (const Operator& op : graph_.ops()) {
    const auto algorithms =
        EnumerateAlgorithms(op, graph_, *mesh_, cluster_.device, Precision::kFloat16);
    for (const ParallelAlgorithm& a : algorithms) {
      ASSERT_EQ(a.output_spec.rank(), op.shape.rank()) << op.ToString() << " " << a.name;
      EXPECT_TRUE(a.output_spec.IsValidFor(op.shape, *mesh_)) << op.ToString() << " " << a.name;
      ASSERT_EQ(a.input_specs.size(), op.operands.size()) << op.ToString() << " " << a.name;
      for (size_t i = 0; i < a.input_specs.size(); ++i) {
        const TensorShape& in_shape = graph_.op(op.operands[i]).shape;
        ASSERT_EQ(a.input_specs[i].rank(), in_shape.rank())
            << op.ToString() << " " << a.name << " operand " << i;
        EXPECT_TRUE(a.input_specs[i].IsValidFor(in_shape, *mesh_))
            << op.ToString() << " " << a.name << " operand " << i;
      }
    }
  }
}

TEST_P(AlgorithmSweep, CostsAreFiniteAndNonNegative) {
  for (const Operator& op : graph_.ops()) {
    const auto algorithms =
        EnumerateAlgorithms(op, graph_, *mesh_, cluster_.device, Precision::kFloat16);
    for (const ParallelAlgorithm& a : algorithms) {
      EXPECT_GE(a.comm_cost, 0.0) << op.ToString() << " " << a.name;
      EXPECT_GE(a.compute_cost, 0.0) << op.ToString() << " " << a.name;
      EXPECT_TRUE(std::isfinite(a.comm_cost)) << op.ToString() << " " << a.name;
      EXPECT_TRUE(std::isfinite(a.compute_cost)) << op.ToString() << " " << a.name;
    }
  }
}

TEST_P(AlgorithmSweep, NoDegenerateAxisSharding) {
  for (const Operator& op : graph_.ops()) {
    const auto algorithms =
        EnumerateAlgorithms(op, graph_, *mesh_, cluster_.device, Precision::kFloat16);
    for (const ParallelAlgorithm& a : algorithms) {
      for (int axis = 0; axis < 2; ++axis) {
        if (mesh_->dim(axis) == 1) {
          EXPECT_EQ(a.output_spec.DimForAxis(axis), -1) << op.ToString() << " " << a.name;
        }
      }
    }
  }
}

TEST_P(AlgorithmSweep, AlgorithmsAreDeduplicated) {
  for (const Operator& op : graph_.ops()) {
    const auto algorithms =
        EnumerateAlgorithms(op, graph_, *mesh_, cluster_.device, Precision::kFloat16);
    for (size_t i = 0; i < algorithms.size(); ++i) {
      for (size_t j = i + 1; j < algorithms.size(); ++j) {
        EXPECT_FALSE(algorithms[i].output_spec == algorithms[j].output_spec &&
                     algorithms[i].input_specs == algorithms[j].input_specs)
            << op.ToString();
      }
    }
  }
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  static const char* const kNames[] = {"gpt", "moe", "wresnet"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) + "_" +
         std::to_string(std::get<1>(info.param)) + "x" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndMeshes, AlgorithmSweep,
    ::testing::Values(Param{Model::kGpt, 1, 8}, Param{Model::kGpt, 2, 4},
                      Param{Model::kGpt, 1, 1}, Param{Model::kMoe, 1, 4},
                      Param{Model::kMoe, 2, 2}, Param{Model::kWideResNet, 1, 4},
                      Param{Model::kWideResNet, 2, 4}),
    ParamName);

}  // namespace
}  // namespace alpa
