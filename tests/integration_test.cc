// Cross-module integration: compile -> instructions -> simulate must agree.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/api.h"
#include "src/core/visualize.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"
#include "src/runtime/instruction.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

TEST(Integration, CompiledPlanEmitsValidInstructionPrograms) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};  // Force 2 stages.
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const auto programs =
      EmitPipelinePrograms(options.schedule, static_cast<int>(plan.pipeline.stages.size()),
                           options.num_microbatches);
  EXPECT_EQ(ValidatePrograms(programs, options.num_microbatches), "");
}

TEST(Integration, DpEstimateTracksSimulatedLatency) {
  // The DP's Eq. 2 objective and the discrete-event simulation must agree
  // within the transfer/update slack the DP approximates.
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 16;
  options.inter.target_layers = 4;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LT(std::abs(stats->latency - plan.pipeline.dp_latency),
            0.35 * plan.pipeline.dp_latency);
}

TEST(Integration, TotalFlopsIndependentOfPlan) {
  // Throughput accounting uses model FLOPs; every plan of the same model
  // must report identical total_flops.
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions a;
  a.num_microbatches = 8;
  a.inter.target_layers = 4;
  ParallelizeOptions b = a;
  b.enable_interop = false;
  Graph g1 = BuildGpt(SmallGpt());
  Graph g2 = BuildGpt(SmallGpt());
  const StatusOr<ExecutionStats> sa = CompileAndSimulate(g1, cluster, a);
  const StatusOr<ExecutionStats> sb = CompileAndSimulate(g2, cluster, b);
  ASSERT_TRUE(sa.ok()) << sa.status().ToString();
  ASSERT_TRUE(sb.ok()) << sb.status().ToString();
  EXPECT_DOUBLE_EQ(sa->total_flops, sb->total_flops);
}

TEST(Integration, MoeEndToEndAcrossTwoNodes) {
  MoeConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.num_experts = 8;
  config.microbatch = 8;
  config.seq_len = 256;
  config.vocab = 2048;
  Graph graph = BuildMoe(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->pflops, 0.0);
}

TEST(Integration, WideResNetTimelineHasNoGiantBubbles) {
  WideResNetConfig config;
  config.microbatch = 16;
  config.base_channels = 64;
  config.width_factor = 2;
  Graph graph = BuildWideResNet(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 16;
  options.inter.target_layers = 8;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_LT(stats->bubble_fraction, 0.5);
  const std::string chart = RenderPipelineTimeline(plan.sim_input, 80);
  EXPECT_NE(chart.find("stage  0"), std::string::npos);
}

TEST(Integration, ReshardStrategyAffectsLatencyMonotonically) {
  Graph g1 = BuildGpt(SmallGpt());
  Graph g2 = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 2);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  options.reshard = ReshardStrategy::kLocalAllGather;
  const StatusOr<ExecutionStats> fast = CompileAndSimulate(g1, cluster, options);
  options.reshard = ReshardStrategy::kNaiveSendRecv;
  const StatusOr<ExecutionStats> slow = CompileAndSimulate(g2, cluster, options);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  EXPECT_LE(fast->latency, slow->latency + 1e-9);
}

}  // namespace
}  // namespace alpa
