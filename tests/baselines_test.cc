#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"

namespace alpa {
namespace {

// A model whose fp16 weights + Adam state exceed one 16 GB device
// (~1.5 GB params -> ~18 GB with optimizer state), so vanilla data
// parallelism must OOM while ZeRO fits: the Fig. 9 setup.
GptConfig MemoryHungryGpt() {
  GptConfig config;
  config.hidden = 2560;
  config.num_layers = 20;
  config.num_heads = 32;
  config.microbatch = 8;
  config.seq_len = 512;
  config.vocab = 8192;
  return config;
}

GptConfig TinyGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

TEST(Baselines, DataParallelOomsOnLargeModel) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const BaselineResult data =
      RunSingleMesh(BuildGpt(MemoryHungryGpt()), cluster, "data", DataParallelFilter());
  // OOM now surfaces as a structured error rather than a stats flag.
  ASSERT_FALSE(data.stats.ok());
  EXPECT_EQ(data.stats.status().code(), StatusCode::kResourceExhausted)
      << data.stats.status().ToString();
}

TEST(Baselines, Zero3FitsWhereDataOoms) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const BaselineResult zero3 =
      RunSingleMesh(BuildGpt(MemoryHungryGpt()), cluster, "zero-3", Zero3Filter());
  ASSERT_TRUE(zero3.stats.ok()) << zero3.stats.status().ToString();
}

TEST(Baselines, Zero2ShardsOptimizerOnly) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const BaselineResult data =
      RunSingleMesh(BuildGpt(TinyGpt()), cluster, "data", DataParallelFilter());
  const BaselineResult zero2 =
      RunSingleMesh(BuildGpt(TinyGpt()), cluster, "zero-2", Zero2Filter());
  ASSERT_TRUE(data.stats.ok()) << data.stats.status().ToString();
  ASSERT_TRUE(zero2.stats.ok()) << zero2.stats.status().ToString();
  EXPECT_LT(zero2.stats->peak_memory_bytes, data.stats->peak_memory_bytes);
}

TEST(Baselines, AutoShardingNoSlowerThanRuleBased) {
  // 7.2: the ILP solution dominates every rule-based strategy under the
  // same cost model (it optimizes exactly that objective).
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const BaselineResult autos = RunSingleMesh(BuildGpt(TinyGpt()), cluster, "auto", nullptr);
  ASSERT_TRUE(autos.stats.ok()) << autos.stats.status().ToString();
  for (auto& [name, filter] :
       std::vector<std::pair<std::string, AlgorithmFilter>>{{"data", DataParallelFilter()},
                                                            {"zero2", Zero2Filter()},
                                                            {"zero3", Zero3Filter()},
                                                            {"heuristic",
                                                             HeuristicLargestDimFilter()}}) {
    const BaselineResult rule = RunSingleMesh(BuildGpt(TinyGpt()), cluster, name, filter);
    if (rule.stats.ok()) {
      EXPECT_LE(autos.stats->latency, rule.stats->latency * 1.02) << name;
    }
  }
}

TEST(Baselines, MegatronFeasibleOnGpt) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const BaselineResult megatron = RunMegatron(BuildGpt(TinyGpt()), cluster, 8, 4);
  ASSERT_TRUE(megatron.stats.ok()) << megatron.stats.status().ToString();
  EXPECT_GT(megatron.stats->pflops, 0.0);
}

TEST(Baselines, AlpaMatchesOrBeatsMegatronOnGpt) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const BaselineResult alpa = RunAlpa(BuildGpt(TinyGpt()), cluster, 8, 4);
  const BaselineResult megatron = RunMegatron(BuildGpt(TinyGpt()), cluster, 8, 4);
  ASSERT_TRUE(alpa.stats.ok()) << alpa.stats.status().ToString();
  ASSERT_TRUE(megatron.stats.ok()) << megatron.stats.status().ToString();
  EXPECT_LE(alpa.stats->latency, megatron.stats->latency * 1.1);
}

TEST(Baselines, DeepSpeedMoeSingleNodeWorks) {
  MoeConfig config;
  config.hidden = 128;
  config.num_layers = 4;
  config.num_heads = 4;
  config.num_experts = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 512;
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const BaselineResult deepspeed = RunDeepSpeedMoe(BuildMoe(config), cluster, 8);
  ASSERT_TRUE(deepspeed.stats.ok()) << deepspeed.stats.status().ToString();
  EXPECT_GT(deepspeed.stats->pflops, 0.0);
}

TEST(Baselines, PpDpFeasibleOnSmallModel) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const BaselineResult ppdp = RunPpDp(BuildGpt(TinyGpt()), cluster, 8, 4);
  ASSERT_TRUE(ppdp.stats.ok()) << ppdp.stats.status().ToString();
}

TEST(Baselines, FiltersAdmitAtLeastOneAlgorithmPerOp) {
  // Every filter must keep the problem solvable on a small graph.
  Graph graph = BuildGpt(TinyGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  for (auto& [name, filter] :
       std::vector<std::pair<std::string, AlgorithmFilter>>{{"data", DataParallelFilter()},
                                                            {"zero2", Zero2Filter()},
                                                            {"zero3", Zero3Filter()},
                                                            {"megatron", MegatronFilter()},
                                                            {"heuristic",
                                                             HeuristicLargestDimFilter()},
                                                            {"expert",
                                                             ExpertParallelFilter()}}) {
    Graph copy = graph;
    const BaselineResult result = RunSingleMesh(std::move(copy), cluster, name, filter);
    EXPECT_TRUE(result.stats.ok()) << name << ": " << result.stats.status().ToString();
  }
}

}  // namespace
}  // namespace alpa
