#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/backward.h"
#include "src/intra/algorithms.h"
#include "src/intra/intra_pass.h"
#include "src/intra/op_merging.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/models/moe.h"

namespace alpa {
namespace {

DeviceMesh Mesh2x2() {
  static const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  MeshPlacement placement;
  placement.shape = SubmeshShape{1, 4};
  return DeviceMesh::Create(cluster, placement, {2, 2});
}

DeviceMesh Mesh1xN(int n) {
  static const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  MeshPlacement placement;
  placement.shape = SubmeshShape{1, n};
  return DeviceMesh::Create(cluster, placement, {1, n});
}

// Finds an algorithm whose output spec matches `spec_string`.
const ParallelAlgorithm* FindByOutput(const std::vector<ParallelAlgorithm>& algorithms,
                                      const std::string& spec_string) {
  for (const ParallelAlgorithm& a : algorithms) {
    if (a.output_spec.ToString() == spec_string) {
      return &a;
    }
  }
  return nullptr;
}

TEST(Algorithms, BatchedMatmulReproducesTable2) {
  // C[b,i,j] = A[b,i,k] B[b,k,j] on a 2x2 mesh (Table 2).
  Graph graph;
  const int a = graph.AddInput("a", TensorShape({16, 64, 64}), DType::kF32);
  const int b = graph.AddInput("b", TensorShape({16, 64, 64}), DType::kF32);
  EinsumSpec spec{"bij", {"bik", "bkj"}, {{'b', 16}, {'i', 64}, {'j', 64}, {'k', 64}}};
  const int c = graph.AddEinsum("bmm", spec, {a, b}, DType::kF32);
  const DeviceMesh mesh = Mesh2x2();
  const auto algorithms =
      EnumerateAlgorithms(graph.op(c), graph, mesh, mesh.cluster().device, Precision::kFloat32);
  const double m_bytes = static_cast<double>(graph.op(c).OutputBytes());

  // Row 1: i->0, j->1: out RS0S1, inputs RS0R / RRS1, no comm.
  const ParallelAlgorithm* row1 = FindByOutput(algorithms, "RS0S1");
  ASSERT_NE(row1, nullptr);
  EXPECT_EQ(row1->input_specs[0].ToString(), "RS0R");
  EXPECT_EQ(row1->input_specs[1].ToString(), "RRS1");
  EXPECT_DOUBLE_EQ(row1->comm_cost, 0.0);
  EXPECT_DOUBLE_EQ(row1->compute_cost, 0.0);

  // Row 2: i->0, k->1: out RS0R with all-reduce(M/2, 1).
  bool found_row2 = false;
  for (const ParallelAlgorithm& algorithm : algorithms) {
    if (algorithm.output_spec.ToString() == "RS0R" &&
        algorithm.input_specs[0].ToString() == "RS0S1" &&
        algorithm.input_specs[1].ToString() == "RS1R") {
      EXPECT_DOUBLE_EQ(algorithm.comm_cost, mesh.AllReduceTime(m_bytes / 2, 1));
      found_row2 = true;
    }
  }
  EXPECT_TRUE(found_row2);

  // Row 4: b->0, i->1: out S0RS1 with zero comm.
  const ParallelAlgorithm* row4 = FindByOutput(algorithms, "S0RS1");
  ASSERT_NE(row4, nullptr);
  EXPECT_DOUBLE_EQ(row4->comm_cost, 0.0);

  // Row 6: i->{0,1}: out RS01R, no comm.
  const ParallelAlgorithm* row6 = FindByOutput(algorithms, "RS01R");
  ASSERT_NE(row6, nullptr);
  EXPECT_DOUBLE_EQ(row6->comm_cost, 0.0);

  // Row 7: k->{0,1}: out RRR, all-reduce over both axes.
  bool found_row7 = false;
  for (const ParallelAlgorithm& algorithm : algorithms) {
    if (algorithm.output_spec.ToString() == "RRR" &&
        algorithm.input_specs[0].ToString() == "RRS01") {
      EXPECT_GT(algorithm.comm_cost, 0.0);
      found_row7 = true;
    }
  }
  EXPECT_TRUE(found_row7);
}

TEST(Algorithms, ReduceScatterVariantCheaperThanAllReduce) {
  Graph graph;
  const int a = graph.AddInput("a", TensorShape({64, 128}), DType::kF32);
  const int b = graph.AddInput("b", TensorShape({64, 128}), DType::kF32);
  // Gradient-like einsum: contraction over the batch.
  EinsumSpec spec{"mf", {"bm", "bf"}, {{'b', 64}, {'m', 128}, {'f', 128}}};
  const int g = graph.AddEinsum("grad_w", spec, {a, b}, DType::kF32);
  const DeviceMesh mesh = Mesh1xN(4);
  const auto algorithms =
      EnumerateAlgorithms(graph.op(g), graph, mesh, mesh.cluster().device, Precision::kFloat32);
  const ParallelAlgorithm* all_reduce = nullptr;
  const ParallelAlgorithm* reduce_scatter = nullptr;
  for (const ParallelAlgorithm& algorithm : algorithms) {
    if (algorithm.input_specs[0].ToString() == "S1R") {
      if (algorithm.output_spec.ToString() == "RR") {
        all_reduce = &algorithm;
      }
      if (algorithm.output_spec.ToString() == "S1R") {
        reduce_scatter = &algorithm;
      }
    }
  }
  ASSERT_NE(all_reduce, nullptr);
  ASSERT_NE(reduce_scatter, nullptr);
  EXPECT_LT(reduce_scatter->comm_cost, all_reduce->comm_cost);
}

TEST(Algorithms, PointwiseFollowsBroadcastOperands) {
  Graph graph;
  const int x = graph.AddInput("x", TensorShape({8, 16, 32}), DType::kF32);
  const int bias = graph.AddParameter("b", TensorShape({32}), DType::kF32);
  const int add = graph.AddElementwise("bias_add", {x, bias});
  const DeviceMesh mesh = Mesh2x2();
  const auto algorithms = EnumerateAlgorithms(graph.op(add), graph, mesh, mesh.cluster().device,
                                              Precision::kFloat32);
  for (const ParallelAlgorithm& algorithm : algorithms) {
    // The bias spec must be the projection of the output's last dim.
    EXPECT_EQ(algorithm.input_specs[1].dim(0), algorithm.output_spec.dim(2)) << algorithm.name;
  }
}

TEST(Algorithms, EmbeddingVocabShardingNeedsAllReduce) {
  Graph graph;
  const int ids = graph.AddInput("ids", TensorShape({8, 64}), DType::kI32);
  const int table = graph.AddParameter("table", TensorShape({1024, 64}), DType::kF32);
  const int emb = graph.AddEmbedding("embed", ids, table);
  const DeviceMesh mesh = Mesh1xN(4);
  const auto algorithms = EnumerateAlgorithms(graph.op(emb), graph, mesh, mesh.cluster().device,
                                              Precision::kFloat32);
  bool found_vocab_sharded = false;
  for (const ParallelAlgorithm& algorithm : algorithms) {
    if (algorithm.input_specs[1].ToString() == "S1R" &&
        algorithm.output_spec.IsFullyReplicated()) {
      EXPECT_GT(algorithm.comm_cost, 0.0);
      found_vocab_sharded = true;
    }
  }
  EXPECT_TRUE(found_vocab_sharded);
}

TEST(Algorithms, MoeDispatchExpertParallelUsesAllToAll) {
  MoeConfig config;
  config.hidden = 64;
  config.num_layers = 2;
  config.num_heads = 4;
  config.num_experts = 8;
  config.microbatch = 4;
  config.seq_len = 64;
  config.vocab = 256;
  config.build_backward = false;
  Graph graph = BuildMoe(config);
  const DeviceMesh mesh = Mesh1xN(4);
  int dispatch_id = -1;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kMoeDispatch) {
      dispatch_id = op.id;
    }
  }
  ASSERT_GE(dispatch_id, 0);
  const auto algorithms = EnumerateAlgorithms(graph.op(dispatch_id), graph, mesh,
                                              mesh.cluster().device, Precision::kFloat16);
  bool expert_parallel = false;
  for (const ParallelAlgorithm& algorithm : algorithms) {
    if (algorithm.output_spec.dim(0) == DimSharding::kS1) {
      EXPECT_GT(algorithm.comm_cost, 0.0) << "expert mapping requires all-to-all";
      expert_parallel = true;
    }
  }
  EXPECT_TRUE(expert_parallel);
}

TEST(OpMerging, ReluAndBiasFollowMatmul) {
  MlpConfig config;
  config.hidden_dims = {64};
  config.batch = 8;
  config.input_dim = 32;
  config.output_dim = 16;
  config.build_backward = false;
  Graph graph = BuildMlp(config);
  const MergePlan plan = ComputeMergePlan(graph);
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kElementwise && op.operands.size() >= 1 &&
        graph.op(op.operands[0]).type == OpType::kEinsum) {
      EXPECT_NE(plan.rep[static_cast<size_t>(op.id)], op.id) << op.name << " should merge";
    }
  }
  // Decision nodes are fewer than ops.
  EXPECT_LT(plan.decision_ops.size(), static_cast<size_t>(graph.size()));
}

TEST(IntraPass, MlpPrefersDataParallelWhenActivationsDominate) {
  MlpConfig config;
  config.batch = 8192;
  config.input_dim = 1024;
  config.hidden_dims = {1024};
  config.output_dim = 1024;
  Graph graph = BuildMlp(config);
  const DeviceMesh mesh = Mesh1xN(8);
  IntraOpOptions options;
  options.precision = Precision::kFloat32;
  const IntraOpResult result = SolveIntraOp(graph, mesh, options);
  ASSERT_TRUE(result.feasible);
  // The first dense op's output should be batch-sharded.
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kEinsum && op.role == OpRole::kForward) {
      EXPECT_EQ(result.op_specs[static_cast<size_t>(op.id)].dim(0), DimSharding::kS1)
          << op.name;
    }
  }
}

TEST(IntraPass, MlpPrefersOperatorParallelWhenWeightsDominate) {
  MlpConfig config;
  config.batch = 16;
  config.input_dim = 8192;
  config.hidden_dims = {8192};
  config.output_dim = 8192;
  Graph graph = BuildMlp(config);
  const DeviceMesh mesh = Mesh1xN(8);
  IntraOpOptions options;
  options.precision = Precision::kFloat32;
  const IntraOpResult result = SolveIntraOp(graph, mesh, options);
  ASSERT_TRUE(result.feasible);
  // Weights should not all be replicated: gradient all-reduce of 8k x 8k
  // matrices dwarfs the tiny activations.
  int sharded_params = 0;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kParameter && op.shape.rank() == 2) {
      sharded_params +=
          result.op_specs[static_cast<size_t>(op.id)].IsFullyReplicated() ? 0 : 1;
    }
  }
  EXPECT_GT(sharded_params, 0);
}

TEST(IntraPass, SingleDeviceMeshTrivial) {
  MlpConfig config;
  config.batch = 32;
  Graph graph = BuildMlp(config);
  const DeviceMesh mesh = Mesh1xN(1);
  IntraOpOptions options;
  options.precision = Precision::kFloat32;
  const IntraOpResult result = SolveIntraOp(graph, mesh, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, 0.0, 1e-9);
  EXPECT_GT(result.t_intra, 0.0);
}

TEST(IntraPass, ReplicatedFilterForcesZeroComm) {
  MlpConfig config;
  Graph graph = BuildMlp(config);
  const DeviceMesh mesh = Mesh1xN(4);
  IntraOpOptions options;
  options.precision = Precision::kFloat32;
  options.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                      const ParallelAlgorithm& a) {
    return a.output_spec.IsFullyReplicated() &&
           std::all_of(a.input_specs.begin(), a.input_specs.end(),
                       [](const ShardingSpec& s) { return s.IsFullyReplicated(); });
  };
  const IntraOpResult result = SolveIntraOp(graph, mesh, options);
  ASSERT_TRUE(result.feasible);
  // Replication means no communication but a 4x compute penalty over ideal.
  EXPECT_GT(result.objective, 0.0);
}

TEST(IntraPass, GptLayerSolvesFastAndFeasible) {
  GptConfig config;
  config.hidden = 1024;
  config.num_layers = 2;
  config.num_heads = 16;
  config.microbatch = 8;
  config.seq_len = 512;
  config.vocab = 4096;
  Graph graph = BuildGpt(config);
  const DeviceMesh mesh = Mesh1xN(4);
  IntraOpOptions options;
  const IntraOpResult result = SolveIntraOp(graph, mesh, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.t_intra, 0.0);
  EXPECT_GT(result.weight_bytes, 0.0);
  EXPECT_GT(result.act_bytes_per_microbatch, 0.0);
}

TEST(IntraPass, MemoryShrinksWithMoreDevices) {
  GptConfig config;
  config.hidden = 512;
  config.num_layers = 2;
  config.num_heads = 8;
  config.microbatch = 8;
  config.seq_len = 256;
  config.vocab = 2048;
  Graph graph = BuildGpt(config);
  IntraOpOptions options;
  const IntraOpResult r1 = SolveIntraOp(graph, Mesh1xN(1), options);
  const IntraOpResult r8 = SolveIntraOp(graph, Mesh1xN(8), options);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r8.feasible);
  EXPECT_LT(r8.act_bytes_per_microbatch, r1.act_bytes_per_microbatch);
  EXPECT_LT(r8.t_intra, r1.t_intra);
}

TEST(IntraPass, ProjectToTrailing) {
  ShardingSpec spec = ShardingSpec::Make({DimSharding::kS0, DimSharding::kR, DimSharding::kS1});
  EXPECT_EQ(ProjectToTrailing(spec, 2).ToString(), "RS1");
  EXPECT_EQ(ProjectToTrailing(spec, 3).ToString(), "S0RS1");
  EXPECT_EQ(ProjectToTrailing(spec, 0).ToString(), "scalar");
}

}  // namespace
}  // namespace alpa
