// The measured-profile feedback loop: MeasuredProfileSource semantics in
// isolation, and the full cycle compile -> execute -> build source ->
// recompile with InterOpOptions::profile_source on the tiny GPT example.
#include "src/inter/profile_feedback.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/api.h"
#include "src/exec/executor.h"
#include "src/models/gpt.h"
#include "src/solver/ilp_solver.h"

namespace alpa {
namespace {

TEST(MeasuredProfileSource, ExactMatchOverridesAnalyticalTime) {
  MeasuredProfileSource source;
  source.AddMeasurement(0, 3, SubmeshShape{1, 2}, 0.5, 1.0);
  source.Finalize();
  EXPECT_EQ(source.num_measurements(), 1);

  StageProfile profile;
  profile.t_intra = 1.0;
  profile.weight_bytes = 77.0;
  source.Apply(0, 3, SubmeshShape{1, 2}, &profile);
  EXPECT_EQ(profile.t_intra, 0.5);
  // Memory fields always come from the model.
  EXPECT_EQ(profile.weight_bytes, 77.0);
}

TEST(MeasuredProfileSource, UnmeasuredCandidatesScaleByMedianRatio) {
  MeasuredProfileSource source;
  // Ratios 0.5, 2.0, 4.0 -> median 2.0.
  source.AddMeasurement(0, 0, SubmeshShape{1, 1}, 0.5, 1.0);
  source.AddMeasurement(1, 1, SubmeshShape{1, 1}, 2.0, 1.0);
  source.AddMeasurement(2, 2, SubmeshShape{1, 1}, 4.0, 1.0);
  source.Finalize();
  EXPECT_DOUBLE_EQ(source.calibration_ratio(), 2.0);

  // A different layer interval: scaled, not replaced.
  StageProfile profile;
  profile.t_intra = 3.0;
  source.Apply(5, 7, SubmeshShape{1, 1}, &profile);
  EXPECT_DOUBLE_EQ(profile.t_intra, 6.0);

  // A different shape on a measured interval is also "unmeasured".
  profile.t_intra = 3.0;
  source.Apply(0, 0, SubmeshShape{1, 2}, &profile);
  EXPECT_DOUBLE_EQ(profile.t_intra, 6.0);
}

TEST(MeasuredProfileSource, InfeasibleCandidatesStayInfeasible) {
  MeasuredProfileSource source;
  source.AddMeasurement(0, 0, SubmeshShape{1, 1}, 2.0, 1.0);
  source.Finalize();
  StageProfile profile;  // Default t_intra = kInfCost.
  source.Apply(3, 4, SubmeshShape{1, 1}, &profile);
  EXPECT_GE(profile.t_intra, kInfCost);
}

TEST(MeasuredProfileSource, NonPositiveMeasurementsAreIgnored) {
  MeasuredProfileSource source;
  source.AddMeasurement(0, 0, SubmeshShape{1, 1}, 0.0, 1.0);
  source.AddMeasurement(1, 1, SubmeshShape{1, 1}, -2.0, 1.0);
  source.Finalize();
  EXPECT_EQ(source.num_measurements(), 0);
  EXPECT_DOUBLE_EQ(source.calibration_ratio(), 1.0);
}

// The acceptance loop: a stage-DP solve driven by measured times must still
// produce a valid executable plan.
TEST(ProfileFeedback, RecompileWithMeasuredTimesYieldsValidGptPlan) {
  GptConfig config;
  config.hidden = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 64;
  Graph graph = BuildGpt(config);

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 2;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};

  StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  StatusOr<exec::ExecResult> result = ExecutePlan(*plan, graph, cluster, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->stage_timings.empty());

  const MeasuredProfileSource source = BuildMeasuredProfileSource(*plan, *result);
  EXPECT_GT(source.num_measurements(), 0);
  EXPECT_GT(source.calibration_ratio(), 0.0);
  EXPECT_TRUE(std::isfinite(source.calibration_ratio()));

  ParallelizeOptions fed = options;
  fed.inter.profile_source = &source;
  StatusOr<ParallelPlan> replan = Parallelize(graph, cluster, fed);
  ASSERT_TRUE(replan.ok()) << replan.status().ToString();
  ASSERT_FALSE(replan->pipeline.stages.empty());

  // The re-planned stages carry finite, positive per-microbatch times and
  // still cover every layer exactly once in order.
  int next_layer = 0;
  for (const CompiledStage& stage : replan->pipeline.stages) {
    EXPECT_EQ(stage.layer_begin, next_layer);
    EXPECT_GE(stage.layer_end, stage.layer_begin);
    next_layer = stage.layer_end + 1;
    EXPECT_GT(stage.t_intra, 0.0);
    EXPECT_LT(stage.t_intra, kInfCost);
  }

  // ...and the fed-back plan still executes.
  StatusOr<exec::ExecResult> rerun = ExecutePlan(*replan, graph, cluster, {});
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->microbatch_loss.size(), 2u);
}

}  // namespace
}  // namespace alpa
