// End-to-end tests of the plan server + remote client: a mixed cold/warm
// concurrent request storm, per-tenant admission control, deadline
// expiry, malformed-bytes handling, and warm restarts from the disk
// cache. These run against a real daemon loop on a real unix socket —
// the same code path alpa_serve ships.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/core/api.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/serve/client.h"
#include "src/serve/plan_cache.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"

namespace alpa {
namespace serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    socket_path_ = "/tmp/alpa_serve_test_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";
  }
  void TearDown() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    ::unlink(socket_path_.c_str());
    if (!cache_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(cache_dir_, ec);
    }
  }

  std::string CacheDir() {
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  ("alpa_serve_test_cache_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                     .string();
    return cache_dir_;
  }

  std::string socket_path_;
  std::string cache_dir_;
};

// A distinct small model per index: distinct graphs hash to distinct plan
// cache keys, so each index is a cold compile.
Graph DistinctMlp(int index) {
  MlpConfig config;
  config.hidden_dims = {256 + 32 * index, 256};
  return BuildMlp(config);
}

PlanRequest MlpRequest(int index, const std::string& tenant = "") {
  PlanRequest request;
  request.graph = DistinctMlp(index);
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  request.options.tenant = tenant;
  return request;
}

// A deliberately heavier compile (a cold GPT takes a couple of seconds —
// MLPs finish in milliseconds), used to pin the worker down while the
// admission tests probe the queue.
PlanRequest SlowRequest(const std::string& tenant) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  PlanRequest request;
  request.graph = BuildGpt(config);
  request.cluster = ClusterSpec::AwsP3(1, 4);
  request.options.num_microbatches = 8;
  request.options.target_layers = 4;
  request.options.tenant = tenant;
  return request;
}

TEST_F(ServeTest, PingAndUnreachable) {
  RemotePlanService dead("/tmp/alpa_serve_test_no_such_socket.sock");
  EXPECT_EQ(dead.Ping().code(), StatusCode::kUnavailable);

  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
  EXPECT_EQ(client.Ping().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, MalformedFrameGetsStructuredError) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Garbage payload in a well-formed frame: the server must answer with a
  // structured decode error on the same connection, not crash or hang up.
  ASSERT_TRUE(WriteFrame(fd, "this is not a wire envelope").ok());
  std::string blob;
  ASSERT_TRUE(ReadFrame(fd, &blob).ok());
  const StatusOr<ServeResponse> response = DeserializeResponse(blob);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().ToStatus().ok());

  // The connection survived: a valid request on it still works.
  RemotePlanService client(socket_path_);
  EXPECT_TRUE(client.Ping().ok());
  ::close(fd);
}

TEST_F(ServeTest, ColdWarmRequestStorm) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.num_workers = 2;
  options.plan_cache_dir = CacheDir();
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kWarmRepeats = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RemotePlanService client(socket_path_);
      // One cold compile unique to this thread...
      const PlanRequest cold = MlpRequest(t, "tenant-" + std::to_string(t % 3));
      const StatusOr<ParallelPlan> plan = client.Parallelize(cold);
      if (!plan.ok()) {
        ++failures;
        return;
      }
      // ...then warm repeats of a graph every thread shares.
      for (int r = 0; r < kWarmRepeats; ++r) {
        const StatusOr<ParallelPlan> shared =
            client.Parallelize(MlpRequest(-1, "tenant-" + std::to_string(t % 3)));
        if (!shared.ok()) {
          ++failures;
          return;
        }
      }
      // A served plan simulates like a locally compiled one.
      const StatusOr<ExecutionStats> stats = client.Simulate(cold, *plan);
      if (!stats.ok() || !(stats.value().latency > 0)) {
        ++failures;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kThreads * (1 + kWarmRepeats + 1));
  EXPECT_EQ(stats.rejected_queue, 0);
  // The shared graph compiles at most once per worker (no in-flight
  // dedup), so at least kThreads*kWarmRepeats - workers requests hit.
  EXPECT_GE(stats.plan_cache_hits, kThreads * kWarmRepeats - options.num_workers);

  // The warm plan is bit-identical to a fresh local compile.
  InProcessPlanService local;
  const StatusOr<ParallelPlan> local_plan = local.Parallelize(MlpRequest(-1));
  ASSERT_TRUE(local_plan.ok());
  RemotePlanService client(socket_path_);
  const StatusOr<ParallelPlan> remote_plan = client.Parallelize(MlpRequest(-1));
  ASSERT_TRUE(remote_plan.ok());
  EXPECT_TRUE(PlanEquals(local_plan->pipeline, remote_plan->pipeline));
  server.Stop();
}

TEST_F(ServeTest, AdmissionBoundsQueueAndTenants) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.num_workers = 1;
  options.max_queue = 8;
  options.max_per_tenant = 1;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Pin the only worker on a slow compile.
  std::thread blocker([&] {
    RemotePlanService client(socket_path_);
    EXPECT_TRUE(client.Parallelize(SlowRequest("blocker")).ok());
  });
  while (server.stats().accepted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // Worker pickup.

  // Tenant A fills its per-tenant quota of one queued request...
  std::thread queued_a([&] {
    RemotePlanService client(socket_path_);
    client.Parallelize(MlpRequest(1, "tenant-a")).ok();  // Served after the blocker.
  });
  while (server.stats().accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // ...so its next request is rejected immediately, while tenant B (under
  // its own quota) is still admitted: one tenant cannot squeeze out
  // another.
  RemotePlanService client(socket_path_);
  const StatusOr<ParallelPlan> rejected = client.Parallelize(MlpRequest(2, "tenant-a"));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected_queue, 1);

  std::thread queued_b([&] {
    RemotePlanService client_b(socket_path_);
    EXPECT_TRUE(client_b.Parallelize(MlpRequest(3, "tenant-b")).ok());
  });
  while (server.stats().accepted < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  blocker.join();
  queued_a.join();
  queued_b.join();
  EXPECT_EQ(server.stats().rejected_queue, 1);
  server.Stop();
}

TEST_F(ServeTest, ExpiredDeadlineFailsWithoutCompiling) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  PlanRequest request = MlpRequest(0);
  request.options.deadline_seconds = 1e-9;  // Expired by pickup time.
  const StatusOr<ParallelPlan> plan = client.Parallelize(request);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired, 1);

  // A sane deadline still scales the solver budget rather than failing.
  request.options.deadline_seconds = 30.0;
  EXPECT_TRUE(client.Parallelize(request).ok());
  server.Stop();
}

TEST_F(ServeTest, RestartServesWarmFromDiskCache) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.plan_cache_dir = CacheDir();

  ParallelPlan first_plan;
  {
    PlanServer server(options);
    ASSERT_TRUE(server.Start().ok());
    RemotePlanService client(socket_path_);
    StatusOr<ParallelPlan> plan = client.Parallelize(MlpRequest(0));
    ASSERT_TRUE(plan.ok());
    first_plan = std::move(plan).value();
    EXPECT_EQ(server.stats().plan_cache_hits, 0);
    server.Stop();
  }

  // "Restart": a new server process would start with an empty memory
  // cache; only the disk entries persist.
  PlanCache::Global().Clear(/*also_disk=*/false);
  {
    PlanServer server(options);
    ASSERT_TRUE(server.Start().ok());
    RemotePlanService client(socket_path_);
    const StatusOr<ParallelPlan> plan = client.Parallelize(MlpRequest(0));
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(server.stats().plan_cache_hits, 1);
    EXPECT_EQ(PlanCache::Global().stats().disk_hits, 1);
    EXPECT_TRUE(PlanEquals(first_plan.pipeline, plan->pipeline));
    server.Stop();
  }
}

}  // namespace
}  // namespace serve
}  // namespace alpa
