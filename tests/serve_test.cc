// End-to-end tests of the plan server + remote client: a mixed cold/warm
// concurrent request storm, per-tenant admission control, deadline
// expiry (including the fail-fast floor), anytime plans under a tight
// deadline, the results-database endpoints, malformed-bytes handling,
// and warm restarts from the disk cache. These run against a real
// daemon loop on a real unix socket — the same code path alpa_serve
// ships.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/core/api.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/serve/client.h"
#include "src/serve/plan_cache.h"
#include "src/serve/plan_db.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    PlanCache::Global().SetLimits(PlanCacheLimits{});
    PlanDb::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanDb::Global().SetDir("").ok());
    socket_path_ = "/tmp/alpa_serve_test_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";
  }
  void TearDown() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    PlanCache::Global().SetLimits(PlanCacheLimits{});
    PlanDb::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanDb::Global().SetDir("").ok());
    ::unlink(socket_path_.c_str());
    if (!cache_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(cache_dir_, ec);
    }
  }

  std::string CacheDir() {
    cache_dir_ = (std::filesystem::temp_directory_path() /
                  ("alpa_serve_test_cache_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                     .string();
    return cache_dir_;
  }

  std::string socket_path_;
  std::string cache_dir_;
};

// A distinct small model per index: distinct graphs hash to distinct plan
// cache keys, so each index is a cold compile.
Graph DistinctMlp(int index) {
  MlpConfig config;
  config.hidden_dims = {256 + 32 * index, 256};
  return BuildMlp(config);
}

PlanRequest MlpRequest(int index, const std::string& tenant = "") {
  PlanRequest request;
  request.graph = DistinctMlp(index);
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  request.options.tenant = tenant;
  return request;
}

// A deliberately heavier compile (a cold GPT takes a couple of seconds —
// MLPs finish in milliseconds), used to pin the worker down while the
// admission tests probe the queue.
PlanRequest SlowRequest(const std::string& tenant) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  PlanRequest request;
  request.graph = BuildGpt(config);
  request.cluster = ClusterSpec::AwsP3(1, 4);
  request.options.num_microbatches = 8;
  request.options.target_layers = 4;
  request.options.tenant = tenant;
  return request;
}

TEST_F(ServeTest, PingAndUnreachable) {
  RemotePlanService dead("/tmp/alpa_serve_test_no_such_socket.sock");
  EXPECT_EQ(dead.Ping().code(), StatusCode::kUnavailable);

  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
  EXPECT_EQ(client.Ping().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, MalformedFrameGetsStructuredError) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path_.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Garbage payload in a well-formed frame: the server must answer with a
  // structured decode error on the same connection, not crash or hang up.
  ASSERT_TRUE(WriteFrame(fd, "this is not a wire envelope").ok());
  std::string blob;
  ASSERT_TRUE(ReadFrame(fd, &blob).ok());
  const StatusOr<ServeResponse> response = DeserializeResponse(blob);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().ToStatus().ok());

  // The connection survived: a valid request on it still works.
  RemotePlanService client(socket_path_);
  EXPECT_TRUE(client.Ping().ok());
  ::close(fd);
}

TEST_F(ServeTest, ColdWarmRequestStorm) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.num_workers = 2;
  options.plan_cache_dir = CacheDir();
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kWarmRepeats = 3;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RemotePlanService client(socket_path_);
      // One cold compile unique to this thread...
      const PlanRequest cold = MlpRequest(t, "tenant-" + std::to_string(t % 3));
      const StatusOr<ParallelPlan> plan = client.Parallelize(cold);
      if (!plan.ok()) {
        ++failures;
        return;
      }
      // ...then warm repeats of a graph every thread shares.
      for (int r = 0; r < kWarmRepeats; ++r) {
        const StatusOr<ParallelPlan> shared =
            client.Parallelize(MlpRequest(-1, "tenant-" + std::to_string(t % 3)));
        if (!shared.ok()) {
          ++failures;
          return;
        }
      }
      // A served plan simulates like a locally compiled one.
      const StatusOr<ExecutionStats> stats = client.Simulate(cold, *plan);
      if (!stats.ok() || !(stats.value().latency > 0)) {
        ++failures;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kThreads * (1 + kWarmRepeats + 1));
  EXPECT_EQ(stats.rejected_queue, 0);
  // Single-flight dedup: the shared graph compiles exactly once no
  // matter how many workers race on it, so every other request for it
  // hits the cache (or joins the flight, which counts as a hit).
  EXPECT_GE(stats.plan_cache_hits, kThreads * kWarmRepeats - 1);

  // The warm plan is bit-identical to a fresh local compile.
  InProcessPlanService local;
  const StatusOr<ParallelPlan> local_plan = local.Parallelize(MlpRequest(-1));
  ASSERT_TRUE(local_plan.ok());
  RemotePlanService client(socket_path_);
  const StatusOr<ParallelPlan> remote_plan = client.Parallelize(MlpRequest(-1));
  ASSERT_TRUE(remote_plan.ok());
  EXPECT_TRUE(PlanEquals(local_plan->pipeline, remote_plan->pipeline));
  server.Stop();
}

TEST_F(ServeTest, AdmissionBoundsQueueAndTenants) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.num_workers = 1;
  options.max_queue = 8;
  options.max_per_tenant = 1;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Pin the only worker on a slow compile.
  std::thread blocker([&] {
    RemotePlanService client(socket_path_);
    EXPECT_TRUE(client.Parallelize(SlowRequest("blocker")).ok());
  });
  while (server.stats().accepted < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // Worker pickup.

  // Tenant A fills its per-tenant quota of one queued request...
  std::thread queued_a([&] {
    RemotePlanService client(socket_path_);
    client.Parallelize(MlpRequest(1, "tenant-a")).ok();  // Served after the blocker.
  });
  while (server.stats().accepted < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // ...so its next request is rejected immediately, while tenant B (under
  // its own quota) is still admitted: one tenant cannot squeeze out
  // another.
  RemotePlanService client(socket_path_);
  const StatusOr<ParallelPlan> rejected = client.Parallelize(MlpRequest(2, "tenant-a"));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected_queue, 1);

  std::thread queued_b([&] {
    RemotePlanService client_b(socket_path_);
    EXPECT_TRUE(client_b.Parallelize(MlpRequest(3, "tenant-b")).ok());
  });
  while (server.stats().accepted < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  blocker.join();
  queued_a.join();
  queued_b.join();
  EXPECT_EQ(server.stats().rejected_queue, 1);
  server.Stop();
}

TEST_F(ServeTest, ExpiredDeadlineFailsWithoutCompiling) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  PlanRequest request = MlpRequest(0);
  request.options.deadline_seconds = 1e-9;  // Expired by pickup time.
  const StatusOr<ParallelPlan> plan = client.Parallelize(request);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired, 1);

  // A sane deadline still scales the solver budget rather than failing.
  request.options.deadline_seconds = 30.0;
  EXPECT_TRUE(client.Parallelize(request).ok());
  server.Stop();
}

TEST_F(ServeTest, NearDeadlineFailsFastBelowBudgetFloor) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  // A deadline under the budget floor leaves only a few ms after queueing.
  // The old behaviour scaled the solver budget to near zero and burned the
  // remaining time on a compile doomed to abort; now the server fails fast
  // without compiling at all.
  Metric* compiles = Metrics::Get("serve/compiles");
  const double compiles_before = compiles->value();
  PlanRequest request = MlpRequest(0);
  request.options.deadline_seconds = kMinDeadlineSeconds / 2;
  const StatusOr<ParallelPlan> plan = client.Parallelize(request);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.stats().expired, 1);
  EXPECT_EQ(compiles->value(), compiles_before);

  // At the floor itself the request is admitted and compiles (the MLP
  // solves well inside the clamped budget).
  request.options.deadline_seconds = kMinDeadlineSeconds * 100;
  EXPECT_TRUE(client.Parallelize(request).ok());
  EXPECT_GT(compiles->value(), compiles_before);
  server.Stop();
}

TEST_F(ServeTest, AnytimeTightBudgetReturnsFeasiblePlanWithGap) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  // Force the stage ILPs down the branch-and-bound path with a budget far
  // too small to prove optimality: the server must still return the best
  // incumbent found, with an honest optimality gap — not abort. The model
  // is wider than SlowRequest's: diffusion-tightened bounds close the
  // small GPT's stage cores at any budget that still yields a plan.
  PlanRequest request = SlowRequest("anytime");
  GptConfig hard;
  hard.hidden = 1024;
  hard.num_layers = 8;
  hard.num_heads = 16;
  hard.microbatch = 4;
  hard.seq_len = 128;
  hard.vocab = 1024;
  request.graph = BuildGpt(hard);
  request.options.use_plan_cache = false;
  request.options.max_search_nodes = 20;
  request.options.max_elimination_table = 0;  // Disable exact elimination.
  const StatusOr<ServeResponse> response =
      client.Call([&] {
        ServeRequest wire;
        wire.method = Method::kParallelize;
        wire.options = request.options;
        wire.graph = request.graph;
        wire.cluster = request.cluster;
        return wire;
      }());
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response.value().ToStatus().ok());
  ASSERT_TRUE(response.value().has_plan);
  const ParallelPlan& plan = response.value().plan;
  EXPECT_GT(plan.compile_stats.ilp_aborts, 0);
  EXPECT_GT(plan.compile_stats.max_optimality_gap, 0.0);
  EXPECT_GT(plan.pipeline.dp_latency, 0.0);
  // The gap is surfaced on the wire response itself, so clients can act
  // on plan quality without digging through compile stats.
  EXPECT_EQ(response.value().optimality_gap, plan.compile_stats.max_optimality_gap);

  // An unconstrained compile of the same model proves optimality and
  // reports a zero gap — and its plan is at least as good.
  PlanRequest exact = SlowRequest("anytime");
  exact.graph = BuildGpt(hard);
  exact.options.use_plan_cache = false;
  const StatusOr<ParallelPlan> exact_plan = client.Parallelize(exact);
  ASSERT_TRUE(exact_plan.ok());
  EXPECT_EQ(exact_plan->compile_stats.ilp_aborts, 0);
  EXPECT_EQ(exact_plan->compile_stats.max_optimality_gap, 0.0);
  EXPECT_LE(exact_plan->pipeline.dp_latency, plan.pipeline.dp_latency + 1e-12);
  server.Stop();
}

TEST_F(ServeTest, ResultsDatabaseListsGetsAndDeletesRecords) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.plan_cache_dir = CacheDir();
  options.admin_tenant = "admin";
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  const PlanRequest alice = MlpRequest(0, "alice");
  const PlanRequest bob = MlpRequest(1, "bob");
  ASSERT_TRUE(client.Parallelize(alice).ok());
  ASSERT_TRUE(client.Parallelize(bob).ok());
  // Warm hits do not add records: the database tracks compiles, not serves.
  ASSERT_TRUE(client.Parallelize(alice).ok());

  // The admin identity sees every tenant's records.
  const StatusOr<std::vector<PlanRecord>> all = client.DbList(PlanDbQuery{}, "admin");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 2u);
  for (const PlanRecord& record : all.value()) {
    EXPECT_GT(record.num_ops, 0);
    EXPECT_EQ(record.num_hosts, 1);
    EXPECT_EQ(record.devices_per_host, 2);
    EXPECT_GT(record.num_stages, 0);
    EXPECT_GT(record.compile_seconds, 0.0);
    EXPECT_GT(record.objective, 0.0);
    EXPECT_GT(record.plan_bytes, 0);
  }

  PlanDbQuery by_tenant;
  by_tenant.tenant = "alice";
  const StatusOr<std::vector<PlanRecord>> filtered = client.DbList(by_tenant, "admin");
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered.value().size(), 1u);
  EXPECT_EQ(filtered.value().front().tenant, "alice");

  PlanDbQuery limited;
  limited.limit = 1;
  const StatusOr<std::vector<PlanRecord>> capped = client.DbList(limited, "admin");
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped.value().size(), 1u);

  const PlanCacheKey alice_key = filtered.value().front().key;
  const StatusOr<PlanRecord> fetched = client.DbGet(alice_key, "admin");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().tenant, "alice");

  // Tenant isolation: a non-admin caller is scoped to its own records.
  // An empty filter defaults to the caller, a cross-tenant filter is
  // rejected outright, and another tenant's record reads as absent (for
  // fetch AND delete) so existence never leaks across the boundary.
  const StatusOr<std::vector<PlanRecord>> mine = client.DbList(PlanDbQuery{}, "alice");
  ASSERT_TRUE(mine.ok());
  ASSERT_EQ(mine.value().size(), 1u);
  EXPECT_EQ(mine.value().front().tenant, "alice");
  EXPECT_FALSE(client.DbList(by_tenant, "bob").ok());
  EXPECT_FALSE(client.DbGet(alice_key, "bob").ok());
  EXPECT_FALSE(client.DbDelete(alice_key, "bob").ok());
  EXPECT_TRUE(client.DbGet(alice_key, "alice").ok());  // Unharmed.
  // The anonymous tenant is a tenant like any other, not a wildcard.
  const StatusOr<std::vector<PlanRecord>> anon = client.DbList(PlanDbQuery{});
  ASSERT_TRUE(anon.ok());
  EXPECT_TRUE(anon.value().empty());

  // The owner can retire its own record.
  EXPECT_TRUE(client.DbDelete(alice_key, "alice").ok());
  EXPECT_FALSE(client.DbGet(alice_key, "admin").ok());
  EXPECT_FALSE(client.DbDelete(alice_key, "admin").ok());
  server.Stop();

  // Records persist on disk alongside the plan cache: a restarted server
  // reloads the surviving record.
  PlanDb::Global().Clear(/*also_disk=*/false);
  PlanServer restarted(options);
  ASSERT_TRUE(restarted.Start().ok());
  RemotePlanService client2(socket_path_);
  const StatusOr<std::vector<PlanRecord>> reloaded = client2.DbList(PlanDbQuery{}, "admin");
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded.value().size(), 1u);
  EXPECT_EQ(reloaded.value().front().tenant, "bob");
  restarted.Stop();
}

TEST_F(ServeTest, RestartServesWarmFromDiskCache) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.plan_cache_dir = CacheDir();

  ParallelPlan first_plan;
  {
    PlanServer server(options);
    ASSERT_TRUE(server.Start().ok());
    RemotePlanService client(socket_path_);
    StatusOr<ParallelPlan> plan = client.Parallelize(MlpRequest(0));
    ASSERT_TRUE(plan.ok());
    first_plan = std::move(plan).value();
    EXPECT_EQ(server.stats().plan_cache_hits, 0);
    server.Stop();
  }

  // "Restart": a new server process would start with an empty memory
  // cache; only the disk entries persist.
  PlanCache::Global().Clear(/*also_disk=*/false);
  {
    PlanServer server(options);
    ASSERT_TRUE(server.Start().ok());
    RemotePlanService client(socket_path_);
    const StatusOr<ParallelPlan> plan = client.Parallelize(MlpRequest(0));
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(server.stats().plan_cache_hits, 1);
    EXPECT_EQ(PlanCache::Global().stats().disk_hits, 1);
    EXPECT_TRUE(PlanEquals(first_plan.pipeline, plan->pipeline));
    server.Stop();
  }
}

TEST_F(ServeTest, ElasticSpeculationServesFailoverFromCache) {
  ServerOptions options;
  options.socket_path = socket_path_;
  options.elastic = true;
  options.speculate_k = 4;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);

  // A 2-host job: the only likely next config is the 1-host shrink (all
  // single-host failures of a homogeneous cluster collapse to one
  // fingerprint). No deadline — deadline-derived budgets feed the cache
  // key, so only deadline-free requests can match a presolve.
  PlanRequest request = MlpRequest(0);
  request.cluster = ClusterSpec::AwsP3(2, 2);
  ASSERT_TRUE(client.Parallelize(request).ok());

  // Speculation runs on the worker thread after the response is published;
  // poll until the presolve for the shrunk cluster has landed.
  StatusOr<ServeResponse> stats = Status::Unavailable("not polled yet");
  for (int i = 0; i < 100; ++i) {
    stats = client.ElasticStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(stats->elastic_enabled);
    if (stats->elastic_speculations >= 1 && stats->elastic_wasted >= 1) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_GE(stats->elastic_speculations, 1);
  ASSERT_GE(stats->elastic_wasted, 1);
  EXPECT_EQ(stats->elastic_hits, 0);

  // Churn strikes: the client re-requests on the shrunk cluster. The plan
  // was presolved into the shared cache, so this is a hit, not a compile.
  PlanRequest failover = MlpRequest(0);
  failover.cluster = ClusterSpec::AwsP3(1, 2);
  ASSERT_TRUE(client.Parallelize(failover).ok());
  EXPECT_EQ(server.stats().plan_cache_hits, 1);

  stats = client.ElasticStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->elastic_hits, 1);
  EXPECT_EQ(stats->elastic_wasted, 0);  // The presolve was consumed.
  server.Stop();
}

TEST_F(ServeTest, ElasticStatsDisabledByDefault) {
  ServerOptions options;
  options.socket_path = socket_path_;
  PlanServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RemotePlanService client(socket_path_);
  const StatusOr<ServeResponse> stats = client.ElasticStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->elastic_enabled);
  EXPECT_EQ(stats->elastic_speculations, 0);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace alpa
