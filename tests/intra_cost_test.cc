// Semantics of the intra-op cost model: gradient-accumulation
// amortization, rematerialization, memory accounting, and solver seeding.
#include <gtest/gtest.h>

#include "src/graph/backward.h"
#include "src/intra/intra_pass.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 512;
  config.num_layers = 2;
  config.num_heads = 8;
  config.microbatch = 8;
  config.seq_len = 256;
  config.vocab = 2048;
  return config;
}

DeviceMesh Mesh(const ClusterSpec& cluster, int d0, int d1) {
  MeshPlacement placement;
  placement.shape = SubmeshShape{1, d0 * d1};
  return DeviceMesh::Create(cluster, placement, {d0, d1});
}

TEST(IntraCost, PerIterationSplitCoversGradSync) {
  // Under data parallelism, the gradient all-reduce is per-iteration; the
  // forward/backward communication should be ~zero.
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  Graph graph = BuildGpt(SmallGpt());
  IntraOpOptions options;
  options.num_microbatches = 16;
  const IntraOpResult result = SolveIntraOp(graph, Mesh(cluster, 1, 8), options);
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.t_per_iteration, 0.0);
}

TEST(IntraCost, AmortizationShiftsPlanTowardsDataParallel) {
  // With B=1, gradient sync is expensive and the ILP balances against it;
  // with large B it amortizes away. The per-microbatch latency with large B
  // must be <= the B=1 latency (the plan space is identical).
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  Graph graph = BuildGpt(SmallGpt());
  IntraOpOptions b1;
  b1.num_microbatches = 1;
  IntraOpOptions b64;
  b64.num_microbatches = 64;
  const IntraOpResult r1 = SolveIntraOp(graph, Mesh(cluster, 1, 8), b1);
  const IntraOpResult r64 = SolveIntraOp(graph, Mesh(cluster, 1, 8), b64);
  ASSERT_TRUE(r1.feasible);
  ASSERT_TRUE(r64.feasible);
  // Objective under large-B amortization: t_intra + t_iter/64 <= t_intra(B=1) + t_iter(B=1).
  EXPECT_LE(r64.t_intra + r64.t_per_iteration / 64.0,
            r1.t_intra + r1.t_per_iteration + 1e-9);
}

TEST(IntraCost, RematerializationTradesTimeForMemory) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  Graph graph = BuildGpt(SmallGpt());
  IntraOpOptions with_remat;
  with_remat.rematerialize = true;
  IntraOpOptions without;
  without.rematerialize = false;
  const IntraOpResult remat = SolveIntraOp(graph, Mesh(cluster, 1, 8), with_remat);
  const IntraOpResult full = SolveIntraOp(graph, Mesh(cluster, 1, 8), without);
  ASSERT_TRUE(remat.feasible);
  ASSERT_TRUE(full.feasible);
  EXPECT_LT(remat.act_bytes_per_microbatch, full.act_bytes_per_microbatch);
  EXPECT_GT(remat.t_intra, full.t_intra);  // Recompute costs a forward pass.
}

TEST(IntraCost, MemoryScalesDownWithDevices) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  Graph graph = BuildGpt(SmallGpt());
  IntraOpOptions options;
  options.num_microbatches = 8;
  const IntraOpResult r2 = SolveIntraOp(graph, Mesh(cluster, 1, 2), options);
  const IntraOpResult r8 = SolveIntraOp(graph, Mesh(cluster, 1, 8), options);
  ASSERT_TRUE(r2.feasible);
  ASSERT_TRUE(r8.feasible);
  EXPECT_LE(r8.weight_bytes, r2.weight_bytes * 1.05);
}

TEST(IntraCost, ForcedChoiceEvaluatesWithoutSolving) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  MlpConfig config;
  config.batch = 64;
  Graph graph = BuildMlp(config);
  const DeviceMesh mesh = Mesh(cluster, 1, 4);
  IntraOpOptions options;
  const IntraOpProblem problem = BuildIntraOpProblem(graph, mesh, options);
  // All-zeros is a valid (if arbitrary) choice vector.
  std::vector<int> choice(problem.algorithms.size(), 0);
  const IntraOpResult result = EvaluateChoice(graph, mesh, problem, options, choice, false);
  if (result.feasible) {
    EXPECT_GE(result.objective, 0.0);
    // The solved optimum can only be better.
    const IntraOpResult solved = SolveIntraOp(graph, mesh, options);
    ASSERT_TRUE(solved.feasible);
    EXPECT_LE(solved.t_intra, result.t_intra + 1e-12);
  }
}

TEST(IntraCost, SeedingNeverHurts) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  Graph graph = BuildGpt(SmallGpt());
  IntraOpOptions seeded;
  seeded.num_microbatches = 1;
  IntraOpOptions unseeded = seeded;
  unseeded.seed_with_plan_families = false;
  const IntraOpResult with = SolveIntraOp(graph, Mesh(cluster, 1, 8), seeded);
  const IntraOpResult without = SolveIntraOp(graph, Mesh(cluster, 1, 8), unseeded);
  ASSERT_TRUE(with.feasible);
  ASSERT_TRUE(without.feasible);
  EXPECT_LE(with.t_intra + with.t_per_iteration,
            without.t_intra + without.t_per_iteration + 1e-9);
}

TEST(IntraCost, OpComputeTimeRoofline) {
  DeviceSpec device;
  Operator matmul;
  matmul.type = OpType::kEinsum;
  matmul.flops = 2e12;
  matmul.shape = TensorShape({1024, 1024});
  matmul.dtype = DType::kF16;
  // Flops-bound: halves with twice the shards.
  EXPECT_NEAR(OpComputeTime(matmul, 2, device, Precision::kFloat16),
              OpComputeTime(matmul, 1, device, Precision::kFloat16) / 2, 1e-12);
  // fp32 is slower than fp16 on tensor cores.
  EXPECT_GT(OpComputeTime(matmul, 1, device, Precision::kFloat32),
            OpComputeTime(matmul, 1, device, Precision::kFloat16));
  Operator relu;
  relu.type = OpType::kElementwise;
  relu.flops = 1e6;
  relu.shape = TensorShape({1024, 1024});
  relu.dtype = DType::kF32;
  // Bytes-bound: time = 3 * bytes / bw.
  EXPECT_NEAR(OpComputeTime(relu, 1, device, Precision::kFloat32),
              3.0 * 1024 * 1024 * 4 / device.memory_bandwidth, 1e-12);
}

}  // namespace
}  // namespace alpa
