#include <gtest/gtest.h>

#include <set>

#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/models/wide_resnet.h"
#include "src/solver/operator_clustering.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 6;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;
  return config;
}

TEST(OperatorClustering, ProducesRequestedLayerCount) {
  Graph graph = BuildGpt(SmallGpt());
  ClusteringOptions options;
  options.num_layers = 3;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.num_layers, 3);
  std::set<int> layers(result.layer_of_forward_op.begin(), result.layer_of_forward_op.end());
  EXPECT_EQ(layers.size(), 3u);
}

TEST(OperatorClustering, LayersAreContiguousInTopologicalOrder) {
  Graph graph = BuildGpt(SmallGpt());
  ClusteringOptions options;
  options.num_layers = 4;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  for (size_t i = 1; i < result.layer_of_forward_op.size(); ++i) {
    EXPECT_GE(result.layer_of_forward_op[i], result.layer_of_forward_op[i - 1]);
    EXPECT_LE(result.layer_of_forward_op[i], result.layer_of_forward_op[i - 1] + 1);
  }
}

TEST(OperatorClustering, FlopBalanceRespectsDelta) {
  Graph graph = BuildGpt(SmallGpt());
  ClusteringOptions options;
  options.num_layers = 3;
  options.delta = 0.5;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  const std::vector<int> fwd = ForwardComputeOps(graph);
  std::vector<double> flops(3, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < fwd.size(); ++i) {
    flops[static_cast<size_t>(result.layer_of_forward_op[i])] += graph.op(fwd[i]).flops;
    total += graph.op(fwd[i]).flops;
  }
  const double cap = (1.0 + options.delta) * total / 3.0;
  // The cap may be lifted to the largest single op; verify against that.
  double max_single = 0.0;
  for (int id : fwd) {
    max_single = std::max(max_single, graph.op(id).flops);
  }
  for (double f : flops) {
    EXPECT_LE(f, std::max(cap, max_single) + 1e-6);
  }
}

TEST(OperatorClustering, EqualOperatorAssignsEqualCounts) {
  Graph graph = BuildGpt(SmallGpt());
  ClusteringOptions options;
  options.num_layers = 4;
  options.method = ClusteringMethod::kEqualOperator;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  std::vector<int> counts(4, 0);
  for (int layer : result.layer_of_forward_op) {
    counts[static_cast<size_t>(layer)]++;
  }
  const int expect = static_cast<int>(result.layer_of_forward_op.size()) / 4;
  for (int count : counts) {
    EXPECT_NEAR(count, expect, expect / 2 + 1);
  }
}

TEST(OperatorClustering, DpHasLowerBoundaryCommThanEqualOperator) {
  // On a heterogeneous model the communication-aware DP should cut at
  // cheaper boundaries than blind equal-operator splitting.
  WideResNetConfig config;
  config.microbatch = 4;
  config.base_channels = 32;
  Graph graph = BuildWideResNet(config);
  ClusteringOptions dp_options;
  dp_options.num_layers = 4;
  const ClusteringResult dp = ClusterOperators(graph, dp_options);
  ASSERT_TRUE(dp.feasible);

  // Compute the equal-operator bottleneck for comparison.
  ClusteringOptions eq_options = dp_options;
  eq_options.method = ClusteringMethod::kEqualOperator;
  const ClusteringResult eq = ClusterOperators(graph, eq_options);
  ASSERT_TRUE(eq.feasible);
  // The DP reports its bottleneck; recompute equal-operator's bottleneck by
  // re-running the DP machinery is not exposed, so just sanity-check DP's.
  EXPECT_GE(dp.bottleneck_comm_bytes, 0.0);
}

TEST(OperatorClustering, AssignLayersCoversAllOps) {
  Graph graph = BuildGpt(SmallGpt());
  ClusteringOptions options;
  options.num_layers = 3;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  AssignLayers(graph, result);
  for (const Operator& op : graph.ops()) {
    EXPECT_GE(op.layer, 0) << op.name;
    EXPECT_LT(op.layer, 3) << op.name;
  }
  // Backward colocation (5.1): bwd ops share their fwd op's layer.
  for (const Operator& op : graph.ops()) {
    if (op.role == OpRole::kBackward && op.forward_id >= 0) {
      EXPECT_EQ(op.layer, graph.op(op.forward_id).layer) << op.name;
    }
  }
  // Updates live with their parameter.
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kUpdate) {
      EXPECT_EQ(op.layer, graph.op(op.param_id).layer) << op.name;
    }
  }
}

TEST(OperatorClustering, SingleLayerClusteringWorks) {
  Graph graph = BuildMlp(MlpConfig{});
  ClusteringOptions options;
  options.num_layers = 1;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  AssignLayers(graph, result);
  EXPECT_EQ(graph.NumLayers(), 1);
}

TEST(OperatorClustering, MoreLayersThanOpsClamps) {
  MlpConfig config;
  config.hidden_dims = {32};
  config.build_backward = false;
  Graph graph = BuildMlp(config);
  ClusteringOptions options;
  options.num_layers = 1000;
  const ClusteringResult result = ClusterOperators(graph, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.num_layers, graph.size());
}

}  // namespace
}  // namespace alpa
