#include <gtest/gtest.h>

#include <cmath>

#include "src/mesh/submesh.h"
#include "src/solver/stage_dp.h"

namespace alpa {
namespace {

class StageDpTest : public ::testing::Test {
 protected:
  StageDpTest() : cluster_(ClusterSpec::AwsP3(1, 4)) {
    shapes_ = EnumerateSubmeshShapes(cluster_);  // (1,1),(1,2),(1,4).
  }
  ClusterSpec cluster_;
  std::vector<SubmeshShape> shapes_;

  // Weights REPLICATED across the stage's devices (data-parallel-like);
  // latency scales linearly with device count.
  StageProfileFn MakeProfile(double per_layer_seconds, double weight_per_layer = 0.0,
                             double act_per_layer = 0.0, double per_iter = 0.0) {
    return [=, this](int begin, int end, int shape_index) {
      const int layers = end - begin + 1;
      const int devices = shapes_[static_cast<size_t>(shape_index)].num_devices();
      StageProfile p;
      p.t_intra = per_layer_seconds * layers / devices;
      p.t_per_iteration = per_iter * layers / devices;
      p.weight_bytes = weight_per_layer * layers;  // Replicated.
      p.act_bytes_per_microbatch = act_per_layer * layers / devices;
      return p;
    };
  }
};

TEST_F(StageDpTest, SingleStageWhenPerfectlyParallel) {
  // With perfectly linear intra-op scaling and no memory pressure, one
  // stage on the whole mesh always wins (no pipeline bubbles).
  const auto result = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0));
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.stages.size(), 1u);
  EXPECT_EQ(shapes_[static_cast<size_t>(result.stages[0].shape_index)].num_devices(), 4);
  EXPECT_NEAR(result.total_latency, 8.0, 1e-9);  // 8 microbatches x 1s.
}

TEST_F(StageDpTest, MemoryForcesPipelining) {
  // Weights are replicated within a stage: 4 layers x 5 GB = 20 GB exceeds
  // one device, so the model must be pipelined into smaller stages.
  const double w = 5e9;
  const auto result = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, w));
  ASSERT_TRUE(result.feasible);
  // Must split into several stages so that weights shard.
  EXPECT_GE(result.stages.size(), 2u);
  // All devices used.
  int total = 0;
  for (const auto& stage : result.stages) {
    total += shapes_[static_cast<size_t>(stage.shape_index)].num_devices();
  }
  EXPECT_EQ(total, 4);
}

TEST_F(StageDpTest, InfeasibleWhenNothingFits) {
  const auto result = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 20e9));
  EXPECT_FALSE(result.feasible);
}

TEST_F(StageDpTest, LayersAreContiguousAndComplete) {
  const auto result = SolveStageDp(6, 4, cluster_, shapes_, MakeProfile(1.0, 4e9));
  ASSERT_TRUE(result.feasible);
  int next = 0;
  for (const auto& stage : result.stages) {
    EXPECT_EQ(stage.layer_begin, next);
    EXPECT_GE(stage.layer_end, stage.layer_begin);
    next = stage.layer_end + 1;
  }
  EXPECT_EQ(next, 6);
}

TEST_F(StageDpTest, Eq2ObjectiveMatchesReconstruction) {
  const auto result = SolveStageDp(4, 16, cluster_, shapes_, MakeProfile(1.0, 4e9));
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.total_latency,
              result.stage_latency_sum + 15 * result.max_stage_latency, 1e-6);
}

TEST_F(StageDpTest, PerIterationCostSteersChoice) {
  // A per-iteration cost that explodes on multi-device stages should push
  // the DP towards fewer devices per stage... here: uniform, so it simply
  // increases the reported latency.
  const auto cheap = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9, 0.0, 0.0));
  const auto costly = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9, 0.0, 8.0));
  ASSERT_TRUE(cheap.feasible);
  ASSERT_TRUE(costly.feasible);
  EXPECT_GT(costly.total_latency, cheap.total_latency);
}

TEST_F(StageDpTest, MoreMicrobatchesAmortizePipeline) {
  // Doubling B should not double latency when pipelining is effective,
  // and per-microbatch latency must improve or stay equal.
  const auto b8 = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9));
  const auto b32 = SolveStageDp(4, 32, cluster_, shapes_, MakeProfile(1.0, 4e9));
  ASSERT_TRUE(b8.feasible);
  ASSERT_TRUE(b32.feasible);
  EXPECT_LE(b32.total_latency / 32.0, b8.total_latency / 8.0 + 1e-9);
}

TEST_F(StageDpTest, InFlightMicrobatchesCountedPerStagePosition) {
  // Activation-heavy layers: the first stage holds S in-flight microbatch
  // activations; make activations so large that only late pipeline
  // positions could hold multiple layers. The DP must still find a valid
  // configuration or reject; verify memory accounting via feasibility flip.
  const double act = 4e9;  // Per layer per microbatch (per device at 1 dev).
  const auto tight = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 0.0, act));
  const auto loose = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 0.0, act / 100));
  ASSERT_TRUE(loose.feasible);
  if (tight.feasible) {
    // If feasible, it must have used more parallelism per early stage.
    EXPECT_GE(tight.total_latency, loose.total_latency - 1e-9);
  }
}

TEST_F(StageDpTest, TmaxSubsampling) {
  StageDpOptions options;
  options.max_tmax_candidates = 4;
  const auto sampled = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), options);
  StageDpOptions full;
  full.max_tmax_candidates = 0;
  const auto exact = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), full);
  ASSERT_TRUE(sampled.feasible);
  ASSERT_TRUE(exact.feasible);
  // Subsampled solution within 25% of exact.
  EXPECT_LE(sampled.total_latency, exact.total_latency * 1.25 + 1e-9);
  EXPECT_GE(sampled.total_latency, exact.total_latency - 1e-9);
}

TEST_F(StageDpTest, TmaxCapOfOneKeepsLargestCandidate) {
  // Regression: a cap of 1 used to divide by zero in the sampling stride.
  // The single kept threshold must be the largest candidate, so a solvable
  // problem stays solvable (just possibly with a looser t_max).
  StageDpOptions capped;
  capped.max_tmax_candidates = 1;
  const auto result = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), capped);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.num_tmax_tried, 1);

  StageDpOptions full;
  full.max_tmax_candidates = 0;
  const auto exact = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), full);
  ASSERT_TRUE(exact.feasible);
  EXPECT_GE(result.total_latency, exact.total_latency - 1e-9);
}

TEST_F(StageDpTest, TmaxCapOfTwoSamplesBothEndpoints) {
  StageDpOptions capped;
  capped.max_tmax_candidates = 2;
  const auto result = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), capped);
  ASSERT_TRUE(result.feasible);
  EXPECT_LE(result.num_tmax_tried, 2);

  StageDpOptions full;
  full.max_tmax_candidates = 0;
  const auto exact = SolveStageDp(4, 8, cluster_, shapes_, MakeProfile(1.0, 4e9), full);
  ASSERT_TRUE(exact.feasible);
  EXPECT_GE(result.total_latency, exact.total_latency - 1e-9);
}

}  // namespace
}  // namespace alpa
