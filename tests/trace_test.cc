// Trace layer: span nesting and thread-lane assignment under the worker
// pool, the zero-allocation guarantee of the disabled path, the Chrome
// trace exporter (golden output), metrics, and span-structure determinism
// across compile thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "src/inter/inter_pass.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

// Counts every heap allocation in the process so the disabled-path test can
// assert a delta of exactly zero. Only the plain new/delete pairs are
// replaced; the aligned overloads keep their defaults, which is consistent
// because replacement is per-signature. GCC's builtin allocator matching
// cannot see that the replaced pair is malloc/free on both sides.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
namespace {
std::atomic<int64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alpa {
namespace {

// Each test leaves the recorder disabled and empty for the next one.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Disable();
    Trace::Clear();
  }
  void TearDown() override {
    Trace::Disable();
    Trace::Clear();
  }
};

TEST_F(TraceTest, DisabledSpansAllocateNothingAndRecordNothing) {
  ASSERT_FALSE(Trace::enabled());
  const int64_t events_before = Trace::event_count();
  const int64_t allocations_before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    TraceSpan span("disabled_span");
    TraceSpan categorized("disabled_span", "pool");
  }
  const int64_t allocations_after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(allocations_after - allocations_before, 0);
  EXPECT_EQ(Trace::event_count(), events_before);
}

TEST_F(TraceTest, NestedSpansShareALaneAndStayContained) {
  if (!Trace::kCompiledIn) {
    GTEST_SKIP() << "built with ALPA_TRACE=OFF";
  }
  Trace::Enable();
  Trace::SetThreadName("main");
  {
    TraceSpan outer("outer");
    outer.set_args("\"depth\":0");
    {
      TraceSpan inner("inner");
    }
  }
  const std::vector<TraceEvent> events = Trace::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const TraceEvent& e : events) {
    if (e.name == "outer") outer = &e;
    if (e.name == "inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->lane, "main");
  EXPECT_EQ(inner->lane, "main");
  EXPECT_EQ(outer->lane_id, inner->lane_id);
  EXPECT_EQ(outer->category, "compile");
  EXPECT_EQ(outer->args, "\"depth\":0");
  EXPECT_FALSE(outer->virtual_time);
  // Rebasing puts the earliest span at 0; the inner interval nests inside.
  EXPECT_EQ(outer->start, 0.0);
  EXPECT_GE(inner->start, outer->start);
  EXPECT_LE(inner->end, outer->end);
}

TEST_F(TraceTest, PoolTasksLandOnWorkerLanesInsidePoolTaskSpans) {
  if (!Trace::kCompiledIn) {
    GTEST_SKIP() << "built with ALPA_TRACE=OFF";
  }
  Trace::Enable();
  {
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([] { TraceSpan span("unit_work"); });
    }
  }  // Destructor joins: all spans are recorded.
  const std::vector<TraceEvent> events = Trace::Snapshot();
  int unit_work_count = 0;
  for (const TraceEvent& work : events) {
    if (work.name != "unit_work") {
      continue;
    }
    ++unit_work_count;
    EXPECT_EQ(work.lane.rfind("pool worker", 0), 0u) << "on lane " << work.lane;
    // Every unit of work is wrapped by the pool's own task span on the
    // same lane.
    bool contained = false;
    for (const TraceEvent& task : events) {
      contained |= task.name == "pool_task" && task.category == "pool" &&
                   task.lane_id == work.lane_id && task.start <= work.start &&
                   task.end >= work.end;
    }
    EXPECT_TRUE(contained) << "unit_work not inside a pool_task span";
  }
  EXPECT_EQ(unit_work_count, 4);
}

TEST_F(TraceTest, ChromeTraceJsonGolden) {
  if (!Trace::kCompiledIn) {
    GTEST_SKIP() << "built with ALPA_TRACE=OFF";
  }
  Trace::Enable();
  Trace::EmitVirtual("mesh 00", "forward mb0", "sim", 0.0, 0.5, "\"microbatch\":0");
  Trace::EmitVirtual("mesh 00", "send", "transfer", 0.5, 0.625);
  const std::string json = Trace::ChromeTraceJson();
  // The metrics header varies with whatever other tests have touched the
  // registry; the event list is compared exactly. With no wall spans the
  // virtual lane takes dense id 0, and 1 simulated second maps to 1e6 us.
  const size_t events_at = json.find("\"traceEvents\"");
  ASSERT_NE(events_at, std::string::npos);
  const std::string expected =
      "\"traceEvents\": [\n"
      "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
      "\"args\":{\"name\":\"compile (wall clock)\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\","
      "\"args\":{\"name\":\"pipeline simulation (virtual time)\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"mesh 00\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_sort_index\","
      "\"args\":{\"sort_index\":0}},\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"name\":\"forward mb0\",\"cat\":\"sim\","
      "\"ts\":0.000,\"dur\":500000.000,\"args\":{\"microbatch\":0}},\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"name\":\"send\",\"cat\":\"transfer\","
      "\"ts\":500000.000,\"dur\":125000.000,\"args\":{}}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(json.substr(events_at), expected);
}

TEST_F(TraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST_F(TraceTest, VirtualWindowsLayOutSequentially) {
  const double first = Trace::ReserveVirtualWindow(2.5);
  const double second = Trace::ReserveVirtualWindow(1.0);
  EXPECT_EQ(second, first + 2.5);
  Trace::Clear();  // Resets the cursor...
  EXPECT_EQ(Trace::ReserveVirtualWindow(1.0), 0.0);  // ...back to zero.
}

TEST_F(TraceTest, MetricsAccumulateAndExport) {
  Metric* counter = Metrics::Get("test.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter, Metrics::Get("test.counter"));  // Interned: stable pointer.
  counter->Reset();
  counter->Add(3);
  counter->Add(4);
  EXPECT_EQ(Metrics::Value("test.counter"), 7);
  EXPECT_EQ(counter->max_value(), 7);
  counter->Set(2);
  EXPECT_EQ(counter->value(), 2);
  EXPECT_EQ(counter->max_value(), 7);  // High-water mark survives Set().
  EXPECT_EQ(Metrics::Value("test.never_touched"), 0);
  EXPECT_NE(Metrics::SummaryJsonBody().find("\"test.counter\":2"), std::string::npos);
  EXPECT_NE(Metrics::SummaryText().find("test.counter"), std::string::npos);
  counter->Reset();
}

TEST_F(TraceTest, CompileSpanStructureDeterministicAcrossThreadCounts) {
  if (!Trace::kCompiledIn) {
    GTEST_SKIP() << "built with ALPA_TRACE=OFF";
  }
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 2;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  InterOpOptions options;
  options.num_microbatches = 4;
  options.target_layers = 2;
  options.profiler.intra.solver.max_search_nodes = 5'000;

  // Multiset of compile-category span kinds. Pool-category spans
  // ("pool_task", "profiling_sweep") scale with the thread count by design.
  const auto compile_spans = [] {
    std::map<std::string, int> set;
    for (const TraceEvent& e : Trace::Snapshot()) {
      if (!e.virtual_time && e.category == "compile") {
        ++set[e.name + "(" + e.args + ")"];
      }
    }
    return set;
  };
  const auto compile_with = [&](int threads) {
    IlpMemoCache::Global().Clear();
    Trace::Clear();
    Graph graph = BuildGpt(config);
    InterOpOptions run = options;
    run.compile_threads = threads;
    return RunInterOpPass(graph, cluster, run);
  };

  Trace::Enable();
  const CompiledPipeline serial = compile_with(1);
  const std::map<std::string, int> serial_spans = compile_spans();
  const CompiledPipeline parallel = compile_with(4);
  const std::map<std::string, int> parallel_spans = compile_spans();

  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_FALSE(serial_spans.empty());
  EXPECT_EQ(serial_spans, parallel_spans);
}

}  // namespace
}  // namespace alpa
