// Tests of the elastic runtime (src/elastic): churn stream determinism,
// LiveCluster mutation semantics, speculative-candidate enumeration, the
// full replan loop's bit-identical fingerprint across thread counts and
// reruns, the speculative-vs-reactive goodput ordering, the ilp.elastic.*
// metrics, heterogeneity-aware stage assignment on mixed-generation
// clusters, and the RepairPlan zero-feasible-submeshes regression.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/api.h"
#include "src/elastic/churn.h"
#include "src/elastic/elastic.h"
#include "src/elastic/speculator.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/support/trace.h"

namespace alpa {
namespace elastic {
namespace {

ParallelizeOptions MlpOptions() {
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 2;
  return options;
}

// A small elastic scenario: 2x2 cluster, aggressive failures, capacity
// replenished by scheduled joins so the loop keeps replanning.
ElasticOptions SmallScenario() {
  ElasticOptions elastic;
  elastic.churn.horizon_seconds = 2000.0;
  elastic.churn.host_mtbf_seconds = 400.0;
  elastic.churn.seed = 0x5eedULL;
  elastic.churn.scheduled.push_back(
      {600.0, ChurnEventKind::kHostJoin, -1, DeviceSpec::V100()});
  elastic.churn.scheduled.push_back(
      {1200.0, ChurnEventKind::kHostJoin, -1, DeviceSpec::V100()});
  return elastic;
}

TEST(Churn, SampleIsDeterministicAndTimeSorted) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(4, 2);
  ChurnOptions options;
  options.horizon_seconds = 86400.0;
  options.host_mtbf_seconds = 4000.0;
  options.scheduled.push_back({500.0, ChurnEventKind::kHostJoin, -1, DeviceSpec::A100()});
  options.scheduled.push_back({40000.0, ChurnEventKind::kHostDrain, 1, {}});

  const std::vector<ChurnEvent> a = SampleChurnEvents(cluster, options);
  const std::vector<ChurnEvent> b = SampleChurnEvents(cluster, options);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 2u);  // Failures sampled, not just the scheduled pair.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].host, b[i].host);
    if (i > 0) {
      EXPECT_GE(a[i].time, a[i - 1].time);
    }
    if (a[i].kind == ChurnEventKind::kHostFailure) {
      EXPECT_GE(a[i].host, 0);
    }
    EXPECT_LT(a[i].time, options.horizon_seconds);
  }

  // A different seed yields a different failure stream.
  options.seed = 0x1234ULL;
  const std::vector<ChurnEvent> c = SampleChurnEvents(cluster, options);
  bool any_difference = c.size() != a.size();
  for (size_t i = 0; !any_difference && i < c.size(); ++i) {
    any_difference = c[i].time != a[i].time;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Churn, LiveClusterAppliesAndValidates) {
  LiveCluster live(ClusterSpec::AwsP3(2, 2));

  // Join an A100 host: the overlay materializes and the spec grows.
  ChurnEvent join{10.0, ChurnEventKind::kHostJoin, -1, DeviceSpec::A100()};
  ASSERT_TRUE(live.Apply(join).ok());
  EXPECT_EQ(live.spec().num_hosts, 3);
  EXPECT_TRUE(live.spec().heterogeneous());
  EXPECT_EQ(live.spec().host_device(2).memory_bytes, DeviceSpec::A100().memory_bytes);

  // Failure of host 0: indices shift down, the A100 host survives.
  ChurnEvent failure{20.0, ChurnEventKind::kHostFailure, 0, {}};
  ASSERT_TRUE(live.Apply(failure).ok());
  EXPECT_EQ(live.spec().num_hosts, 2);
  EXPECT_EQ(live.spec().host_device(1).memory_bytes, DeviceSpec::A100().memory_bytes);

  // Out-of-range target: rejected, spec untouched.
  ChurnEvent bogus{30.0, ChurnEventKind::kHostDrain, 7, {}};
  EXPECT_EQ(live.Apply(bogus).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(live.spec().num_hosts, 2);

  // Draining down to zero hosts is infeasible.
  ChurnEvent drain{40.0, ChurnEventKind::kHostDrain, 0, {}};
  ASSERT_TRUE(live.Apply(drain).ok());
  EXPECT_EQ(live.spec().num_hosts, 1);
  ChurnEvent last{50.0, ChurnEventKind::kHostFailure, 0, {}};
  EXPECT_EQ(live.Apply(last).code(), StatusCode::kInfeasible);
  EXPECT_EQ(live.spec().num_hosts, 1);
}

TEST(Speculator, HomogeneousFailuresCollapseToOneCandidate) {
  // Every single-host failure of a homogeneous cluster shrinks to the
  // same spec, so fingerprint dedup leaves exactly one failure candidate.
  const ClusterSpec cluster = ClusterSpec::AwsP3(3, 2);
  SpeculationOptions options;
  options.k = 8;
  const std::vector<CandidateConfig> candidates =
      EnumerateLikelyConfigs(cluster, {}, 0.0, 86400.0, options);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].cluster.num_hosts, 2);
  EXPECT_GT(candidates[0].likelihood, 0.0);
}

TEST(Speculator, MixedGenerationFailuresStayDistinct) {
  // Losing the V100 host and losing the A100 host are different futures.
  const ClusterSpec mixed = ClusterSpec::MixedGeneration(1, 1, /*devices_per_host=*/2);
  SpeculationOptions options;
  options.k = 8;
  std::vector<CandidateConfig> candidates =
      EnumerateLikelyConfigs(mixed, {}, 0.0, 86400.0, options);
  EXPECT_EQ(candidates.size(), 2u);

  // An announced join inside the lookahead ranks first (likelihood 1).
  std::vector<ChurnEvent> announced = {
      {1000.0, ChurnEventKind::kHostJoin, -1, DeviceSpec::H100()}};
  candidates = EnumerateLikelyConfigs(mixed, announced, 0.0, 86400.0, options);
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].likelihood, 1.0);
  EXPECT_EQ(candidates[0].cluster.num_hosts, 3);
}

TEST(Elastic, FingerprintIdenticalAcrossThreadsAndReruns) {
  const Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec initial = ClusterSpec::AwsP3(2, 2);
  const ParallelizeOptions options = MlpOptions();

  ElasticOptions inline_presolves = SmallScenario();
  inline_presolves.threads = 0;
  const StatusOr<ElasticRunResult> a =
      RunElasticLoop(graph, initial, options, inline_presolves);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_GT(a->events_applied, 0);

  const StatusOr<ElasticRunResult> b =
      RunElasticLoop(graph, initial, options, inline_presolves);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ElasticOptions pooled = SmallScenario();
  pooled.threads = 4;
  const StatusOr<ElasticRunResult> c = RunElasticLoop(graph, initial, options, pooled);
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  EXPECT_EQ(a->DeterminismFingerprint(), b->DeterminismFingerprint());
  EXPECT_EQ(a->DeterminismFingerprint(), c->DeterminismFingerprint());
  EXPECT_EQ(a->total_goodput_pflops_seconds, c->total_goodput_pflops_seconds);
  EXPECT_EQ(a->epochs.size(), c->epochs.size());
}

TEST(Elastic, SpeculativeBeatsReactiveGoodput) {
  const Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec initial = ClusterSpec::AwsP3(2, 2);
  const ParallelizeOptions options = MlpOptions();

  ElasticOptions reactive_options = SmallScenario();
  reactive_options.speculative = false;
  const StatusOr<ElasticRunResult> reactive =
      RunElasticLoop(graph, initial, options, reactive_options);
  ASSERT_TRUE(reactive.ok()) << reactive.status().ToString();

  ElasticOptions speculative_options = SmallScenario();
  speculative_options.speculative = true;
  speculative_options.threads = 2;
  const StatusOr<ElasticRunResult> speculative =
      RunElasticLoop(graph, initial, options, speculative_options);
  ASSERT_TRUE(speculative.ok()) << speculative.status().ToString();

  // Same churn stream, so the comparison is apples to apples.
  ASSERT_EQ(speculative->events_applied, reactive->events_applied);
  EXPECT_GT(speculative->speculative_hits, 0);
  EXPECT_EQ(reactive->speculations, 0);
  EXPECT_LT(speculative->total_downtime_seconds, reactive->total_downtime_seconds);
  EXPECT_GT(speculative->total_goodput_pflops_seconds,
            reactive->total_goodput_pflops_seconds);
}

TEST(Elastic, MetricsPublished) {
  Metrics::Reset();
  const Graph graph = BuildMlp(MlpConfig{});
  ElasticOptions elastic = SmallScenario();
  elastic.threads = 2;
  const StatusOr<ElasticRunResult> run =
      RunElasticLoop(graph, ClusterSpec::AwsP3(2, 2), MlpOptions(), elastic);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_GT(run->speculations, 0);
  EXPECT_EQ(Metrics::Value("ilp.elastic.speculations"), run->speculations);
  EXPECT_EQ(Metrics::Value("ilp.elastic.speculative_hits"), run->speculative_hits);
  EXPECT_EQ(Metrics::Value("ilp.elastic.speculative_misses"), run->speculative_misses);
  EXPECT_EQ(Metrics::Value("ilp.elastic.wasted_presolves"), run->wasted_presolves);
}

TEST(Elastic, InfeasibleInitialClusterErrors) {
  const Graph graph = BuildMlp(MlpConfig{});
  ElasticOptions elastic;
  elastic.churn.horizon_seconds = -1.0;
  const StatusOr<ElasticRunResult> run =
      RunElasticLoop(graph, ClusterSpec::AwsP3(2, 2), MlpOptions(), elastic);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(Hetero, MixedGenerationPresetShape) {
  const ClusterSpec mixed = ClusterSpec::MixedGeneration(2, 2, /*devices_per_host=*/2);
  EXPECT_EQ(mixed.num_hosts, 4);
  ASSERT_EQ(mixed.host_devices.size(), 4u);
  EXPECT_TRUE(mixed.heterogeneous());
  // Base (reference) hosts first, fast hosts appended.
  EXPECT_EQ(mixed.HostTimeScale(0, Precision::kFloat16), 1.0);
  EXPECT_LT(mixed.HostTimeScale(2, Precision::kFloat16), 1.0);
  // Fingerprints separate mixed from uniform clusters of the same extent.
  EXPECT_NE(mixed.Fingerprint(), ClusterSpec::AwsP3(4, 2).Fingerprint());
}

TEST(Hetero, AwareAssignmentBeatsUniformAssumption) {
  // The bench configuration: stages span multiple same-shape submeshes
  // with unequal latencies, so matching slow stages to fast meshes moves
  // the pipeline bottleneck.
  GptConfig config = GptPaperCases()[0].config;
  config.microbatch = 8;
  const ClusterSpec mixed = ClusterSpec::MixedGeneration(2, 2, /*devices_per_host=*/2);
  const ParallelizeOptions base = ParallelizeOptions::Builder()
                                      .microbatches(8)
                                      .target_layers(4)
                                      .threads(1)
                                      .search_budget(60'000)
                                      .Build();

  ParallelizeOptions aware_options = base;
  aware_options.inter.hetero_aware = true;
  Graph aware_graph = BuildGpt(config);
  const StatusOr<ParallelPlan> aware = Parallelize(aware_graph, mixed, aware_options);
  ASSERT_TRUE(aware.ok()) << aware.status().ToString();
  ASSERT_TRUE(aware->pipeline.feasible);

  ParallelizeOptions uniform_options = base;
  uniform_options.inter.hetero_aware = false;
  Graph uniform_graph = BuildGpt(config);
  const StatusOr<ParallelPlan> uniform = Parallelize(uniform_graph, mixed, uniform_options);
  ASSERT_TRUE(uniform.ok()) << uniform.status().ToString();

  const Graph graph = BuildGpt(config);
  const StatusOr<ExecutionStats> aware_stats = Simulate(*aware, graph, mixed);
  const StatusOr<ExecutionStats> uniform_stats = Simulate(*uniform, graph, mixed);
  ASSERT_TRUE(aware_stats.ok()) << aware_stats.status().ToString();
  ASSERT_TRUE(uniform_stats.ok()) << uniform_stats.status().ToString();
  EXPECT_LT(aware_stats->latency, uniform_stats->latency);
}

TEST(Repair, ZeroFeasibleSubmeshesRejected) {
  // failed_host kills host 0 and the fault scenario kills host 1 (device 2
  // lives there): nothing survives, which must be a structured error, not
  // a crash or an empty compile.
  Graph graph = BuildMlp(MlpConfig{});
  ClusterSpec cluster = ClusterSpec::AwsP3(2, 2);
  cluster.faults.device_failures.push_back({2, 0.0});
  RepairOptions repair;
  repair.failed_host = 0;
  const StatusOr<RepairResult> result = RepairPlan(graph, cluster, MlpOptions(), repair);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("zero feasible"), std::string::npos);
}

TEST(Repair, FaultDeviceOutOfRangeRejected) {
  Graph graph = BuildMlp(MlpConfig{});
  ClusterSpec cluster = ClusterSpec::AwsP3(2, 2);
  cluster.faults.device_failures.push_back({99, 0.0});
  RepairOptions repair;
  repair.failed_host = 0;
  const StatusOr<RepairResult> result = RepairPlan(graph, cluster, MlpOptions(), repair);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Repair, FaultsOnSurvivingHostsShrinkFurther) {
  // Faults name devices on host 2 as well: repair must drop BOTH the
  // explicitly failed host and every fault-stricken host.
  Graph graph = BuildMlp(MlpConfig{});
  ClusterSpec cluster = ClusterSpec::AwsP3(3, 2);
  cluster.faults.device_failures.push_back({4, 0.0});  // Host 2.
  RepairOptions repair;
  repair.failed_host = 0;
  const StatusOr<RepairResult> result = RepairPlan(graph, cluster, MlpOptions(), repair);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shrunk_cluster.num_hosts, 1);
  EXPECT_TRUE(result->shrunk_cluster.faults.device_failures.empty());
}

}  // namespace
}  // namespace elastic
}  // namespace alpa
