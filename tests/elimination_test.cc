#include "src/solver/elimination.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/support/rng.h"

namespace alpa {
namespace {

double BruteForce(const IlpProblem& problem) {
  std::vector<int> choice(static_cast<size_t>(problem.num_nodes()), 0);
  double best = kInfCost;
  while (true) {
    best = std::min(best, problem.Evaluate(choice));
    int i = 0;
    while (i < problem.num_nodes()) {
      if (++choice[static_cast<size_t>(i)] < problem.num_choices(i)) {
        break;
      }
      choice[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == problem.num_nodes()) {
      break;
    }
  }
  return best;
}

IlpProblem RandomProblem(Rng& rng, int nodes, int max_choices, double edge_prob,
                         bool allow_inf = false) {
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_choices)));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[static_cast<size_t>(v)].push_back(rng.NextDouble(0, 10));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() > edge_prob) {
        continue;
      }
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          double c = rng.NextDouble(0, 5);
          if (allow_inf && rng.NextDouble() < 0.1) {
            c = kInfCost;
          }
          row.push_back(c);
        }
      }
      problem.edges.push_back(std::move(edge));
    }
  }
  return problem;
}

TEST(Elimination, EmptyProblem) {
  IlpProblem problem;
  const auto choice = SolveByElimination(problem, 1 << 20);
  ASSERT_TRUE(choice.has_value());
  EXPECT_TRUE(choice->empty());
}

TEST(Elimination, SingleNode) {
  IlpProblem problem;
  problem.node_costs = {{3.0, 1.0, 2.0}};
  const auto choice = SolveByElimination(problem, 1 << 20);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ((*choice)[0], 1);
}

TEST(Elimination, ZeroCapDisables) {
  IlpProblem problem;
  problem.node_costs = {{3.0, 1.0}};
  EXPECT_FALSE(SolveByElimination(problem, 0).has_value());
}

TEST(Elimination, CapBailsOutOnWideClique) {
  // K6 with 4 choices per node: eliminating any node needs a table over the
  // 5 remaining neighbors, 4^5 = 1024 cells. A cap below that must refuse.
  Rng rng(13);
  IlpProblem problem = RandomProblem(rng, 6, 1, 1.1);
  for (auto& costs : problem.node_costs) {
    costs = {0.0, 1.0, 2.0, 3.0};
  }
  for (auto& edge : problem.edges) {
    edge.cost.assign(4, std::vector<double>(4, 0.0));
    for (auto& row : edge.cost) {
      for (double& c : row) {
        c = rng.NextDouble(0, 5);
      }
    }
  }
  EXPECT_FALSE(SolveByElimination(problem, 1000).has_value());
  const auto choice = SolveByElimination(problem, 1024);
  ASSERT_TRUE(choice.has_value());
  EXPECT_NEAR(problem.Evaluate(*choice), BruteForce(problem), 1e-9);
}

TEST(Elimination, MatchesBruteForceOnRandomGraphs) {
  Rng rng(29);
  for (int trial = 0; trial < 120; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(7));
    const IlpProblem problem = RandomProblem(rng, nodes, 4, 0.6);
    const auto choice = SolveByElimination(problem, 1 << 20);
    ASSERT_TRUE(choice.has_value()) << trial;
    EXPECT_NEAR(problem.Evaluate(*choice), BruteForce(problem), 1e-9)
        << "trial " << trial;
  }
}

TEST(Elimination, MatchesBruteForceWithInfeasibleEntries) {
  Rng rng(31);
  for (int trial = 0; trial < 80; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(6));
    const IlpProblem problem = RandomProblem(rng, nodes, 3, 0.7, /*allow_inf=*/true);
    const auto choice = SolveByElimination(problem, 1 << 20);
    ASSERT_TRUE(choice.has_value()) << trial;
    const double brute = BruteForce(problem);
    const double value = problem.Evaluate(*choice);
    if (std::isinf(brute)) {
      EXPECT_TRUE(std::isinf(value)) << trial;
    } else {
      EXPECT_NEAR(value, brute, 1e-9) << "trial " << trial;
    }
  }
}

TEST(Elimination, Deterministic) {
  Rng rng(37);
  const IlpProblem problem = RandomProblem(rng, 9, 4, 0.5);
  const auto a = SolveByElimination(problem, 1 << 20);
  const auto b = SolveByElimination(problem, 1 << 20);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace alpa
