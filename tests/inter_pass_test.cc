#include <gtest/gtest.h>

#include "src/inter/inter_pass.h"
#include "src/inter/stage_extraction.h"
#include "src/models/gpt.h"
#include "src/models/wide_resnet.h"
#include "src/solver/operator_clustering.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

TEST(StageExtraction, PlaceholdersForCrossStageTensors) {
  Graph graph = BuildGpt(SmallGpt());
  // Layer tags from the builder: 4 layers.
  const StageSubgraph stage = ExtractStage(graph, 1, 2);
  stage.graph.Validate();
  EXPECT_GT(stage.inputs.size(), 0u);
  EXPECT_GT(stage.outputs.size(), 0u);
  // Placeholders are inputs with ".boundary" names.
  int placeholders = 0;
  for (const Operator& op : stage.graph.ops()) {
    if (op.type == OpType::kInput && op.name.find(".boundary") != std::string::npos) {
      ++placeholders;
    }
  }
  EXPECT_EQ(placeholders, static_cast<int>(stage.inputs.size()));
}

TEST(StageExtraction, ColocatesForwardAndBackward) {
  Graph graph = BuildGpt(SmallGpt());
  const StageSubgraph stage = ExtractStage(graph, 1, 1);
  bool has_forward = false;
  bool has_backward = false;
  bool has_update = false;
  for (const Operator& op : stage.graph.ops()) {
    has_forward |= op.role == OpRole::kForward && op.type == OpType::kEinsum;
    has_backward |= op.role == OpRole::kBackward;
    has_update |= op.type == OpType::kUpdate;
  }
  EXPECT_TRUE(has_forward);
  EXPECT_TRUE(has_backward);
  EXPECT_TRUE(has_update);
}

TEST(StageExtraction, FullRangeKeepsEverything) {
  Graph graph = BuildGpt(SmallGpt());
  const StageSubgraph stage = ExtractStage(graph, 0, graph.NumLayers() - 1);
  EXPECT_EQ(stage.graph.size(), graph.size());
  EXPECT_TRUE(stage.inputs.empty());
  EXPECT_TRUE(stage.outputs.empty());
}

TEST(InterPass, StagesCoverClusterAndLayers) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 4;
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
  int devices = 0;
  int next_layer = 0;
  for (const CompiledStage& stage : pipeline.stages) {
    devices += stage.placement.shape.num_devices();
    EXPECT_EQ(stage.layer_begin, next_layer);
    next_layer = stage.layer_end + 1;
    EXPECT_GT(stage.t_intra, 0.0);
    EXPECT_GT(stage.weight_bytes, 0.0);
  }
  EXPECT_EQ(devices, 4);
  EXPECT_EQ(next_layer, graph.NumLayers());
}

TEST(InterPass, AdjacentStagesHaveBoundaryTensors) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 4;
  // Force pipelining by restricting submeshes to two devices.
  options.submesh_shapes = {SubmeshShape{1, 2}};
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
  ASSERT_EQ(pipeline.stages.size(), 2u);
  EXPECT_GT(pipeline.stages[0].sends_to_next.size(), 0u);
  EXPECT_TRUE(pipeline.stages[1].sends_to_next.empty());
  for (const CrossStageTensor& tensor : pipeline.stages[0].sends_to_next) {
    EXPECT_GT(tensor.shape.elements(), 0);
  }
}

TEST(InterPass, EqualLayerRestrictionFeasible) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 4;
  options.equal_layer_stages = true;
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
  // All stages span the same number of layers.
  const int span = pipeline.stages[0].layer_end - pipeline.stages[0].layer_begin;
  for (const CompiledStage& stage : pipeline.stages) {
    EXPECT_EQ(stage.layer_end - stage.layer_begin, span);
  }
}

TEST(InterPass, DpNoWorseThanEqualLayer) {
  Graph graph1 = BuildGpt(SmallGpt());
  Graph graph2 = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 4;
  const CompiledPipeline dp = RunInterOpPass(graph1, cluster, options);
  options.equal_layer_stages = true;
  const CompiledPipeline equal = RunInterOpPass(graph2, cluster, options);
  ASSERT_TRUE(dp.feasible);
  ASSERT_TRUE(equal.feasible);
  EXPECT_LE(dp.dp_latency, equal.dp_latency * 1.001);
}

TEST(InterPass, OpSpecSummaryPopulated) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 2;
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
  size_t summary = 0;
  for (const CompiledStage& stage : pipeline.stages) {
    summary += stage.op_spec_summary.size();
  }
  EXPECT_GT(summary, 0u);
}

TEST(InterPass, CompileStatsAreRecorded) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  InterOpOptions options;
  options.num_microbatches = 4;
  options.target_layers = 2;
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
  EXPECT_GT(pipeline.stats.total_seconds, 0.0);
  EXPECT_GT(pipeline.stats.ilp_solves, 0);
  EXPECT_GT(pipeline.stats.num_tmax_tried, 0);
}

TEST(InterPass, HeterogeneousModelUnevenStagesAllowed) {
  WideResNetConfig config;
  config.microbatch = 8;
  config.base_channels = 64;
  config.width_factor = 2;
  Graph graph = BuildWideResNet(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 8;
  const CompiledPipeline pipeline = RunInterOpPass(graph, cluster, options);
  ASSERT_TRUE(pipeline.feasible);
}

}  // namespace
}  // namespace alpa
