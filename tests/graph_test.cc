#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/backward.h"
#include "src/graph/graph.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"

namespace alpa {
namespace {

TEST(TensorShape, Basics) {
  TensorShape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.elements(), 24);
  EXPECT_EQ(s.ToString(), "[2,3,4]");
  EXPECT_EQ(TensorShape({}).elements(), 1);  // Scalar.
}

TEST(EinsumSpec, Matmul) {
  EinsumSpec spec{"bf", {"bm", "mf"}, {{'b', 8}, {'m', 16}, {'f', 32}}};
  EXPECT_EQ(spec.ContractionLabels(), "m");
  EXPECT_DOUBLE_EQ(spec.Flops(), 2.0 * 8 * 16 * 32);
  EXPECT_EQ(spec.ToString(), "bm,mf->bf");
}

TEST(EinsumSpec, BatchedMatmul) {
  EinsumSpec spec{"bij", {"bik", "bkj"}, {{'b', 4}, {'i', 8}, {'j', 8}, {'k', 8}}};
  EXPECT_EQ(spec.ContractionLabels(), "k");
  EXPECT_DOUBLE_EQ(spec.Flops(), 2.0 * 4 * 8 * 8 * 8);
}

TEST(Graph, BuilderAndValidation) {
  Graph graph;
  const int x = graph.AddInput("x", TensorShape({4, 8}), DType::kF32);
  const int w = graph.AddParameter("w", TensorShape({8, 8}), DType::kF32);
  EinsumSpec spec{"bf", {"bm", "mf"}, {{'b', 4}, {'m', 8}, {'f', 8}}};
  const int y = graph.AddEinsum("mm", spec, {x, w}, DType::kF32);
  graph.AddLoss("loss", {y});
  graph.Validate();
  EXPECT_EQ(graph.size(), 4);
  EXPECT_EQ(graph.ParameterIds(), std::vector<int>{w});
  EXPECT_EQ(graph.InputIds(), std::vector<int>{x});
  EXPECT_EQ(graph.op(y).shape, TensorShape({4, 8}));
}

TEST(Graph, ConsumersIndex) {
  Graph graph = BuildMlp(MlpConfig{});
  auto consumers = graph.Consumers();
  // Every non-final op has at least one consumer.
  int orphans = 0;
  for (int v = 0; v < graph.size(); ++v) {
    if (consumers[static_cast<size_t>(v)].empty() && graph.op(v).type != OpType::kUpdate &&
        graph.op(v).type != OpType::kLoss) {
      ++orphans;
    }
  }
  // Softmax gate outputs etc. may be unconsumed, but an MLP has none.
  EXPECT_EQ(orphans, 0);
}

TEST(Backward, MlpStructure) {
  MlpConfig config;
  config.hidden_dims = {64};
  config.input_dim = 32;
  config.output_dim = 16;
  config.batch = 8;
  Graph graph = BuildMlp(config);
  // Two dense layers -> 2 updates (weights) + 2 updates (biases).
  int updates = 0;
  int backward = 0;
  for (const Operator& op : graph.ops()) {
    updates += op.type == OpType::kUpdate ? 1 : 0;
    backward += op.role == OpRole::kBackward ? 1 : 0;
  }
  EXPECT_EQ(updates, 4);
  EXPECT_GT(backward, 0);
}

TEST(Backward, FlopsRatioRoughlyTwo) {
  // Backward matmul FLOPs = 2x forward (dX and dW each cost one forward).
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 2;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  Graph graph = BuildGpt(config);
  const double fwd = graph.FlopsForRole(OpRole::kForward);
  const double bwd = graph.FlopsForRole(OpRole::kBackward);
  EXPECT_NEAR(bwd / fwd, 2.0, 0.3);
}

TEST(Backward, GradAccumulationForSharedTensors) {
  // A tensor consumed twice must receive a grad-accumulation add.
  Graph graph;
  const int x = graph.AddInput("x", TensorShape({4, 8}), DType::kF32);
  const int w = graph.AddParameter("w", TensorShape({8, 8}), DType::kF32);
  EinsumSpec spec{"bf", {"bm", "mf"}, {{'b', 4}, {'m', 8}, {'f', 8}}};
  const int a = graph.AddEinsum("a", spec, {x, w}, DType::kF32);
  EinsumSpec spec2{"bf", {"bm", "mf"}, {{'b', 4}, {'m', 8}, {'f', 8}}};
  const int b = graph.AddEinsum("b", spec2, {a, w}, DType::kF32);  // w used twice.
  const int sum = graph.AddElementwise("sum", {a, b});             // a used twice.
  graph.AddLoss("loss", {sum});
  BuildTrainingGraph(graph);
  int acc = 0;
  for (const Operator& op : graph.ops()) {
    if (op.name.find("grad_acc") != std::string::npos) {
      ++acc;
    }
  }
  EXPECT_GE(acc, 2);  // One for w, one for a.
  // Exactly one update: w.
  int updates = 0;
  for (const Operator& op : graph.ops()) {
    updates += op.type == OpType::kUpdate ? 1 : 0;
  }
  EXPECT_EQ(updates, 1);
}

TEST(Backward, LayerTagsInherited) {
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 3;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;
  Graph graph = BuildGpt(config);
  for (const Operator& op : graph.ops()) {
    if (op.role == OpRole::kBackward && op.forward_id >= 0) {
      EXPECT_EQ(op.layer, graph.op(op.forward_id).layer) << op.name;
    }
  }
  EXPECT_EQ(graph.NumLayers(), 3);
}

// --- Parameter counts versus the paper's tables. ---

TEST(Models, GptParamCountsMatchTable5) {
  // Paper counts (billions): 0.35, 1.3, 2.6, 6.7, 15, 39. Our analytic
  // count includes the untied LM head, so allow a modest margin.
  const double expected[] = {0.35e9, 1.3e9, 2.6e9, 6.7e9, 15e9, 39e9};
  const auto cases = GptPaperCases();
  ASSERT_EQ(cases.size(), 6u);
  for (size_t i = 0; i < cases.size(); ++i) {
    const double params = static_cast<double>(cases[i].config.NumParams());
    EXPECT_NEAR(params / expected[i], 1.0, 0.25) << cases[i].name;
  }
}

TEST(Models, GptGraphMatchesAnalyticParams) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 2;
  config.seq_len = 128;
  config.vocab = 1000;
  Graph graph = BuildGpt(config);
  const int64_t graph_params = graph.ParameterBytes() / DTypeBytes(config.dtype);
  // Analytic count ignores layernorm gains (not modeled as params).
  EXPECT_EQ(graph_params, config.NumParams());
}

TEST(Models, MoeParamCountsMatchTable6) {
  const double expected[] = {0.38e9, 1.3e9, 2.4e9, 10e9, 27e9, 70e9};
  const auto cases = MoePaperCases();
  ASSERT_EQ(cases.size(), 6u);
  for (size_t i = 0; i < cases.size(); ++i) {
    const double params = static_cast<double>(cases[i].config.NumParams());
    EXPECT_NEAR(params / expected[i], 1.0, 0.3) << cases[i].name;
  }
}

TEST(Models, MoeGraphMatchesAnalyticParams) {
  MoeConfig config;
  config.hidden = 128;
  config.num_layers = 4;
  config.num_heads = 4;
  config.num_experts = 4;
  config.microbatch = 2;
  config.seq_len = 128;
  config.vocab = 1000;
  Graph graph = BuildMoe(config);
  const int64_t graph_params = graph.ParameterBytes() / DTypeBytes(config.dtype);
  EXPECT_EQ(graph_params, config.NumParams());
}

TEST(Models, WideResNetParamCountsMatchTable7) {
  const double expected[] = {0.25e9, 1e9, 2e9, 4e9, 6.8e9, 13e9};
  const auto cases = WideResNetPaperCases();
  ASSERT_EQ(cases.size(), 6u);
  for (size_t i = 0; i < cases.size(); ++i) {
    const double params = static_cast<double>(cases[i].config.NumParams());
    EXPECT_NEAR(params / expected[i], 1.0, 0.3) << cases[i].name;
  }
}

TEST(Models, WideResNetGraphMatchesAnalyticParams) {
  WideResNetConfig config;
  config.microbatch = 4;
  config.base_channels = 32;
  config.width_factor = 2;
  Graph graph = BuildWideResNet(config);
  const int64_t graph_params = graph.ParameterBytes() / DTypeBytes(config.dtype);
  EXPECT_EQ(graph_params, config.NumParams());
}

TEST(Models, WideResNet101Deeper) {
  WideResNetConfig c50;
  c50.base_channels = 64;
  WideResNetConfig c101 = c50;
  c101.num_layers = 101;
  EXPECT_GT(c101.NumParams(), 1.7 * c50.NumParams());
}

TEST(Models, GraphFlopsScaleWithModel) {
  GptConfig small;
  small.hidden = 256;
  small.num_layers = 2;
  small.num_heads = 8;
  small.microbatch = 2;
  small.seq_len = 128;
  small.vocab = 1024;
  GptConfig big = small;
  big.hidden = 512;
  const Graph g_small = BuildGpt(small);
  const Graph g_big = BuildGpt(big);
  // Matmul-dominated: ~4x flops for 2x hidden.
  EXPECT_GT(g_big.TotalFlops(), 3.0 * g_small.TotalFlops());
}

}  // namespace
}  // namespace alpa
