// Wire-format unit tests: primitive and envelope round-trips on
// hand-assembled artifacts, plus the adversarial decode suite (truncation
// at every byte boundary, deterministic bit flips, version skew) that
// locks in the never-crash Status contract. Everything here is built by
// hand — no compiler passes — so the ASan twin (asan_wire_test) can link
// from a small source list. Compiled-plan PlanEquals round-trips live in
// plan_roundtrip_test.cc.
#include "src/serve/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

namespace alpa {
namespace serve {
namespace {

// --- Hand-assembled artifacts ---

Graph TestGraph() {
  Graph graph;
  Operator input;
  input.type = OpType::kInput;
  input.name = "x";
  input.shape = TensorShape({8, 16});
  input.dtype = DType::kF16;
  input.layer = 0;
  const int x = graph.Append(input);

  Operator weight;
  weight.type = OpType::kParameter;
  weight.name = "w";
  weight.shape = TensorShape({16, 32});
  weight.dtype = DType::kF16;
  weight.layer = 0;
  const int w = graph.Append(weight);

  Operator matmul;
  matmul.type = OpType::kEinsum;
  matmul.role = OpRole::kForward;
  matmul.name = "matmul";
  matmul.operands = {x, w};
  matmul.shape = TensorShape({8, 32});
  matmul.dtype = DType::kF16;
  matmul.einsum.output = "bf";
  matmul.einsum.operands = {"bm", "mf"};
  matmul.einsum.extents = {{'b', 8}, {'m', 16}, {'f', 32}};
  matmul.flops = 2.0 * 8 * 16 * 32;
  matmul.layer = 0;
  graph.Append(matmul);
  return graph;
}

ClusterSpec TestCluster() {
  ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  // Mixed generations: per-host overrides must survive the wire (v3).
  cluster.host_devices = {DeviceSpec::V100(), DeviceSpec::A100()};
  cluster.faults.device_failures.push_back({3, 1.5});
  cluster.faults.stragglers.push_back({1, 2.0});
  cluster.faults.link_degradations.push_back({0, 1, 0.25});
  cluster.faults.transient_send_failure_rate = 0.01;
  cluster.faults.seed = 0xabcdef;
  return cluster;
}

ParallelPlan TestPlan() {
  ParallelPlan plan;
  plan.pipeline.feasible = true;
  plan.pipeline.num_microbatches = 4;
  plan.pipeline.dp_latency = 0.125;
  plan.pipeline.max_stage_latency = 0.0625;
  plan.pipeline.stats.total_seconds = 1.75;
  plan.pipeline.stats.ilp_solves = 12;

  CompiledStage stage;
  stage.layer_begin = 0;
  stage.layer_end = 1;
  stage.placement.host_begin = 0;
  stage.placement.shape = {1, 4};
  stage.logical_shape = {2, 2};
  stage.device_ids = {0, 1, 2, 3};
  stage.t_intra = 0.011;
  stage.t_forward = 0.004;
  stage.t_backward = 0.007;
  stage.t_per_iteration = 0.002;
  stage.weight_bytes = 1 << 20;
  stage.act_bytes_per_microbatch = 1 << 18;
  stage.work_bytes = 1 << 19;
  CrossStageTensor tensor;
  tensor.shape = TensorShape({8, 32});
  tensor.dtype_bytes = 2;
  tensor.src_spec = ShardingSpec::Make({DimSharding::kS0, DimSharding::kR});
  tensor.dst_spec = ShardingSpec::Make({DimSharding::kR, DimSharding::kS1});
  tensor.forward = true;
  tensor.producer_op = 2;
  stage.sends_to_next.push_back(tensor);
  stage.op_spec_summary = {{"matmul", "S0R"}};
  plan.pipeline.stages.push_back(stage);

  plan.sim_input.stages.push_back({0.004, 0.007, 0.002, 0.001, 1 << 20, 1 << 18, 1 << 19});
  plan.sim_input.num_microbatches = 4;
  plan.sim_input.schedule = PipelineScheduleType::k1F1B;
  plan.sim_input.device_memory_bytes = 16e9;
  plan.sim_input.stage_devices = {{0, 1, 2, 3}};
  plan.sim_input.devices_per_host = 4;

  plan.compile_stats = plan.pipeline.stats;
  return plan;
}

// Bit-identity proxy: two values whose encodings are byte-equal hold
// exactly the same field bits (the encoding covers every field).
template <typename T, typename EncodeFn>
std::string EncodedBytes(const T& value, EncodeFn encode) {
  WireWriter w;
  encode(value, &w);
  return w.Take();
}

// --- Primitives ---

TEST(WirePrimitives, RoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I32(-42);
  w.I64(-1);
  w.F64(-0.3333333333333333);
  w.Bool(true);
  w.Str("hello");
  WireReader r(w.data());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I32(), -42);
  EXPECT_EQ(r.I64(), -1);
  EXPECT_EQ(r.F64(), -0.3333333333333333);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WirePrimitives, DoubleBitPattern) {
  // NaN payloads and signed zero must survive bit-exactly.
  const double values[] = {0.0, -0.0, 1e300, -1e-300,
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity()};
  for (double v : values) {
    WireWriter w;
    w.F64(v);
    WireReader r(w.data());
    const double back = r.F64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof(v)), 0);
  }
}

TEST(WirePrimitives, ReaderLatchesFirstError) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.data());
  EXPECT_EQ(r.U32(), 0u);  // Out of bounds.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // Still latched, still zero.
  const Status status = r.status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("byte 0"), std::string::npos);
}

TEST(WirePrimitives, CountRejectsOversizedClaims) {
  WireWriter w;
  w.U32(0xffffff);  // Claims 16M elements...
  w.U32(0);         // ...with 4 bytes of actual data.
  WireReader r(w.data());
  EXPECT_EQ(r.Count(8), 0u);
  EXPECT_FALSE(r.ok());
}

// --- Envelope ---

TEST(WireEnvelope, PackUnpack) {
  const std::string blob = WirePack(WireKind::kGraph, "payload-bytes");
  std::string_view payload;
  ASSERT_TRUE(WireUnpack(blob, WireKind::kGraph, &payload).ok());
  EXPECT_EQ(payload, "payload-bytes");
}

TEST(WireEnvelope, WrongKindRejected) {
  const std::string blob = WirePack(WireKind::kGraph, "payload");
  std::string_view payload;
  const Status status = WireUnpack(blob, WireKind::kPlan, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireEnvelope, WrongMagicRejected) {
  std::string blob = WirePack(WireKind::kGraph, "payload");
  blob[0] = 'X';
  std::string_view payload;
  const Status status = WireUnpack(blob, WireKind::kGraph, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
}

TEST(WireEnvelope, VersionSkewRejected) {
  std::string blob = WirePack(WireKind::kGraph, "payload");
  blob[4] = static_cast<char>(kWireVersion + 1);  // Future version.
  std::string_view payload;
  const Status status = WireUnpack(blob, WireKind::kGraph, &payload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

// --- Round-trips on hand-assembled artifacts (byte-identity) ---

TEST(WireRoundTrip, Graph) {
  const Graph graph = TestGraph();
  const std::string blob = SerializeGraph(graph);
  const StatusOr<Graph> back = DeserializeGraph(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), graph.size());
  EXPECT_EQ(EncodedBytes(*back, EncodeGraph), EncodedBytes(graph, EncodeGraph));
}

TEST(WireRoundTrip, ClusterSpec) {
  const ClusterSpec cluster = TestCluster();
  const StatusOr<ClusterSpec> back = DeserializeClusterSpec(SerializeClusterSpec(cluster));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EncodedBytes(*back, EncodeClusterSpec), EncodedBytes(cluster, EncodeClusterSpec));
  EXPECT_EQ(back->num_hosts, 2);
  ASSERT_EQ(back->host_devices.size(), 2u);
  EXPECT_TRUE(back->heterogeneous());
  EXPECT_EQ(back->host_devices[1].memory_bytes, DeviceSpec::A100().memory_bytes);
  EXPECT_EQ(back->faults.device_failures.size(), 1u);
  EXPECT_EQ(back->faults.seed, 0xabcdefu);
}

TEST(WireRoundTrip, Plan) {
  const ParallelPlan plan = TestPlan();
  const StatusOr<ParallelPlan> back = DeserializePlan(SerializePlan(plan));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EncodedBytes(*back, EncodePlan), EncodedBytes(plan, EncodePlan));
  EXPECT_EQ(back->pipeline.stages.size(), 1u);
  EXPECT_EQ(back->pipeline.stages[0].sends_to_next[0].src_spec.ToString(),
            plan.pipeline.stages[0].sends_to_next[0].src_spec.ToString());
}

TEST(WireRoundTrip, ExecutionStats) {
  ExecutionStats stats;
  stats.latency = 0.125;
  stats.total_flops = 1e15;
  stats.pflops = 8.0;
  stats.bubble_fraction = 0.0625;
  stats.peak_memory_bytes = 12e9;
  const StatusOr<ExecutionStats> back =
      DeserializeExecutionStats(SerializeExecutionStats(stats));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EncodedBytes(*back, EncodeExecutionStats), EncodedBytes(stats, EncodeExecutionStats));
}

TEST(WireRoundTrip, StageTimings) {
  std::vector<exec::StageTiming> timings(2);
  timings[0].stage = 0;
  timings[0].phase_seconds[0] = 0.004;
  timings[0].phase_seconds[1] = 0.007;
  timings[0].num_devices = 4;
  timings[1].stage = 1;
  timings[1].phase_seconds[4] = 0.001;
  timings[1].num_devices = 2;
  const auto back = DeserializeStageTimings(SerializeStageTimings(timings));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(EncodedBytes(*back, EncodeStageTimings), EncodedBytes(timings, EncodeStageTimings));
}

// --- Adversarial decodes: Status, never a crash ---

TEST(WireAdversarial, PlanTruncatedAtEveryByte) {
  const std::string blob = SerializePlan(TestPlan());
  for (size_t len = 0; len < blob.size(); ++len) {
    const StatusOr<ParallelPlan> result = DeserializePlan(blob.substr(0, len));
    EXPECT_FALSE(result.ok()) << "truncation to " << len << " bytes decoded successfully";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireAdversarial, GraphTruncatedAtEveryByte) {
  const std::string blob = SerializeGraph(TestGraph());
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(DeserializeGraph(blob.substr(0, len)).ok());
  }
}

TEST(WireAdversarial, EveryBitFlipDetected) {
  const std::string blob = SerializePlan(TestPlan());
  // Deterministic SplitMix64 position sampling (covers the whole blob
  // given enough samples; headers, payload, and checksum all get hit).
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int trial = 0; trial < 512; ++trial) {
    const uint64_t r = next();
    const size_t byte = r % blob.size();
    const int bit = static_cast<int>((r >> 32) % 8);
    std::string corrupted = blob;
    corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
    const StatusOr<ParallelPlan> result = DeserializePlan(corrupted);
    EXPECT_FALSE(result.ok()) << "bit " << bit << " of byte " << byte << " flipped undetected";
  }
}

TEST(WireAdversarial, GraphWithForwardOperandRejected) {
  // An operand referencing a not-yet-appended op would CHECK-crash
  // Graph::Append; the decoder must pre-validate instead.
  WireWriter w;
  w.U32(1);                       // One op...
  w.U8(static_cast<uint8_t>(OpType::kElementwise));
  w.U8(static_cast<uint8_t>(OpRole::kForward));
  w.Str("bad");
  w.U32(1);
  w.I32(5);                       // ...whose operand is op 5.
  w.U32(0);                       // Scalar shape.
  w.U8(static_cast<uint8_t>(DType::kF32));
  w.Str("");                      // Einsum: empty output...
  w.U32(0);                       // ...no operands...
  w.U32(0);
  w.U32(0);                       // ...no extents/halo.
  w.F64(0);
  w.I32(-1);
  w.I32(-1);
  w.I32(-1);
  w.Bool(false);
  const StatusOr<Graph> result = DeserializeGraph(WirePack(WireKind::kGraph, w.Take()));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("topological"), std::string::npos);
}

TEST(WireAdversarial, ShardingSpecAxisReuseRejected) {
  // A spec sharding mesh axis 0 across two dims would CHECK-crash
  // ShardingSpec::Make; the decoder must pre-validate. Corrupt the
  // payload BEFORE packing so the checksum passes and the corruption
  // reaches the field decoder.
  WireWriter w;
  EncodePlan(TestPlan(), &w);
  std::string raw = w.Take();
  // The encoded src_spec of the stage's boundary tensor: rank 2 (u32),
  // then dims {kS0, kR}.
  const char pattern[] = {2, 0, 0, 0, static_cast<char>(DimSharding::kS0),
                          static_cast<char>(DimSharding::kR)};
  const size_t pos = raw.find(std::string(pattern, sizeof(pattern)));
  ASSERT_NE(pos, std::string::npos);
  raw[pos + 5] = static_cast<char>(DimSharding::kS0);
  const StatusOr<ParallelPlan> result = DeserializePlan(WirePack(WireKind::kPlan, raw));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("mesh axis"), std::string::npos);
}

TEST(WireAdversarial, HostDeviceCountMismatchRejected) {
  // A per-host override list must cover every host or no host; encoding a
  // deliberately inconsistent spec produces the malformed payload.
  ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  cluster.host_devices = {DeviceSpec::A100()};  // 1 entry, 2 hosts.
  const StatusOr<ClusterSpec> result = DeserializeClusterSpec(SerializeClusterSpec(cluster));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("host_devices"), std::string::npos);
}

TEST(WireAdversarial, TrailingBytesRejected) {
  WireWriter w;
  EncodeClusterSpec(TestCluster(), &w);
  w.U32(0xdeadbeef);  // Garbage after a valid payload.
  const StatusOr<ClusterSpec> result =
      DeserializeClusterSpec(WirePack(WireKind::kClusterSpec, w.Take()));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace alpa
