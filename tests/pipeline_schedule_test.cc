#include "src/runtime/pipeline_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/runtime/instruction.h"

namespace alpa {
namespace {

using Kind = PipelineInstruction::Kind;

struct SweepCase {
  PipelineScheduleType type;
  int stages;
  int microbatches;
};

std::vector<SweepCase> Sweep() {
  std::vector<SweepCase> cases;
  for (PipelineScheduleType type : {PipelineScheduleType::kGpipe, PipelineScheduleType::k1F1B}) {
    for (int stages : {1, 2, 3, 4, 6}) {
      for (int microbatches : {1, 2, 4, 7, 16}) {
        cases.push_back({type, stages, microbatches});
      }
    }
  }
  return cases;
}

TEST(PipelineSchedule, EveryStageRunsEveryMicrobatchOnceAndUpdatesLast) {
  for (const SweepCase& c : Sweep()) {
    SCOPED_TRACE(ToString(c.type) + " S=" + std::to_string(c.stages) +
                 " B=" + std::to_string(c.microbatches));
    const auto schedule = BuildPipelineSchedule(c.type, c.stages, c.microbatches);
    ASSERT_EQ(static_cast<int>(schedule.size()), c.stages);
    for (const std::vector<PipelineInstruction>& program : schedule) {
      std::multiset<int> fwd;
      std::multiset<int> bwd;
      int updates = 0;
      for (const PipelineInstruction& inst : program) {
        switch (inst.kind) {
          case Kind::kForward:
            EXPECT_EQ(updates, 0) << "forward after update";
            fwd.insert(inst.microbatch);
            break;
          case Kind::kBackward:
            EXPECT_EQ(updates, 0) << "backward after update";
            // A microbatch's backward needs its forward activations.
            EXPECT_EQ(fwd.count(inst.microbatch), 1u);
            bwd.insert(inst.microbatch);
            break;
          case Kind::kUpdate:
            ++updates;
            break;
        }
      }
      EXPECT_EQ(updates, 1);
      EXPECT_EQ(static_cast<int>(fwd.size()), c.microbatches);
      EXPECT_EQ(static_cast<int>(bwd.size()), c.microbatches);
      for (int mb = 0; mb < c.microbatches; ++mb) {
        EXPECT_EQ(fwd.count(mb), 1u);
        EXPECT_EQ(bwd.count(mb), 1u);
      }
    }
  }
}

TEST(PipelineSchedule, GpipeRunsAllForwardsBeforeAnyBackward) {
  for (int stages : {1, 2, 4, 6}) {
    for (int microbatches : {1, 3, 8}) {
      const auto schedule =
          BuildPipelineSchedule(PipelineScheduleType::kGpipe, stages, microbatches);
      for (int s = 0; s < stages; ++s) {
        bool saw_backward = false;
        for (const PipelineInstruction& inst : schedule[static_cast<size_t>(s)]) {
          saw_backward = saw_backward || inst.kind == Kind::kBackward;
          EXPECT_FALSE(saw_backward && inst.kind == Kind::kForward)
              << "GPipe stage " << s << " interleaves forward after backward";
        }
      }
    }
  }
}

TEST(PipelineSchedule, OneFOneBWarmupDepthThenStrictAlternation) {
  for (int stages : {2, 3, 4, 6}) {
    for (int microbatches : {1, 4, 7, 16}) {
      const auto schedule =
          BuildPipelineSchedule(PipelineScheduleType::k1F1B, stages, microbatches);
      for (int s = 0; s < stages; ++s) {
        const std::vector<PipelineInstruction>& program = schedule[static_cast<size_t>(s)];
        // Warmup: stage s issues min(S-1-s, B) forwards before its first
        // backward (the classic 1F1B pipeline-depth warmup), then strictly
        // alternates while both kinds remain.
        const int expected_warmup = std::min(stages - 1 - s, microbatches - 1);
        int warmup = 0;
        for (const PipelineInstruction& inst : program) {
          if (inst.kind == Kind::kBackward) {
            break;
          }
          warmup += inst.kind == Kind::kForward ? 1 : 0;
        }
        EXPECT_EQ(warmup, expected_warmup + 1)
            << "stage " << s << "/" << stages << " B=" << microbatches;
        // Backwards retire in microbatch order (synchronous 1F1B).
        int last_bwd = -1;
        for (const PipelineInstruction& inst : program) {
          if (inst.kind == Kind::kBackward) {
            EXPECT_EQ(inst.microbatch, last_bwd + 1);
            last_bwd = inst.microbatch;
          }
        }
      }
    }
  }
}

TEST(PipelineSchedule, InFlightActivationsMatchMaxInFlightBound) {
  for (const SweepCase& c : Sweep()) {
    SCOPED_TRACE(ToString(c.type) + " S=" + std::to_string(c.stages) +
                 " B=" + std::to_string(c.microbatches));
    const auto schedule = BuildPipelineSchedule(c.type, c.stages, c.microbatches);
    for (int s = 0; s < c.stages; ++s) {
      int live = 0;
      int peak = 0;
      for (const PipelineInstruction& inst : schedule[static_cast<size_t>(s)]) {
        if (inst.kind == Kind::kForward) {
          peak = std::max(peak, ++live);
        } else if (inst.kind == Kind::kBackward) {
          --live;
        }
      }
      EXPECT_EQ(live, 0);
      // The bound is tight: the schedule actually reaches it.
      EXPECT_EQ(peak, MaxInFlightMicrobatches(c.type, c.stages, s, c.microbatches));
    }
  }
}

TEST(PipelineSchedule, OneFOneBNeverHoldsMoreThanGpipe) {
  for (int stages : {2, 4, 6}) {
    for (int microbatches : {4, 8, 16}) {
      for (int s = 0; s < stages; ++s) {
        EXPECT_LE(
            MaxInFlightMicrobatches(PipelineScheduleType::k1F1B, stages, s, microbatches),
            MaxInFlightMicrobatches(PipelineScheduleType::kGpipe, stages, s, microbatches));
      }
    }
  }
}

TEST(PipelineSchedule, EmittedProgramsValidateAndReachSlotBound) {
  for (const SweepCase& c : Sweep()) {
    SCOPED_TRACE(ToString(c.type) + " S=" + std::to_string(c.stages) +
                 " B=" + std::to_string(c.microbatches));
    const std::vector<MeshProgram> programs =
        EmitPipelinePrograms(c.type, c.stages, c.microbatches);
    EXPECT_EQ(ValidatePrograms(programs, c.microbatches), "");
    for (int s = 0; s < c.stages; ++s) {
      // Peak buffer slot usage of the emitted program equals the schedule's
      // in-flight bound: slot reuse is maximal.
      std::set<int> live;
      int peak = 0;
      for (const MeshInstruction& inst : programs[static_cast<size_t>(s)].instructions) {
        if (inst.kind == InstructionKind::kAllocActivation) {
          ASSERT_GE(inst.buffer_id, 0);
          EXPECT_TRUE(live.insert(inst.buffer_id).second) << "slot reused while live";
          peak = std::max(peak, static_cast<int>(live.size()));
        } else if (inst.kind == InstructionKind::kFreeActivation) {
          EXPECT_EQ(live.erase(inst.buffer_id), 1u);
        }
      }
      EXPECT_TRUE(live.empty());
      EXPECT_EQ(peak, MaxInFlightMicrobatches(c.type, c.stages, s, c.microbatches));
    }
  }
}

}  // namespace
}  // namespace alpa
