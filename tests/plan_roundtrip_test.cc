// Round-trip property tests on real compiled plans: for GPT, MoE, and
// Wide-ResNet, serialize → deserialize must reproduce the plan
// PlanEquals-bit-identically (every latency double included), and the
// re-encoded bytes must equal the original encoding (full field
// coverage — a field the codec forgot would diverge here).
#include <gtest/gtest.h>

#include "src/core/api.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"
#include "src/serve/wire.h"

namespace alpa {
namespace {

ParallelPlan Compile(Graph graph, const ClusterSpec& cluster, int num_microbatches,
                     int target_layers) {
  ParallelizeOptions options;
  options.num_microbatches = num_microbatches;
  options.inter.target_layers = target_layers;
  StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

void ExpectRoundTripIdentical(const ParallelPlan& plan) {
  const std::string blob = serve::SerializePlan(plan);
  const StatusOr<ParallelPlan> back = serve::DeserializePlan(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // The semantic predicate the compiler's own determinism tests use...
  EXPECT_TRUE(PlanEquals(plan.pipeline, back->pipeline));
  // ...and raw bit-identity of every encoded field, timing stats included.
  const std::string reblob = serve::SerializePlan(*back);
  EXPECT_EQ(blob, reblob);
  // Deserializing the re-serialization is a fixpoint.
  const StatusOr<ParallelPlan> back2 = serve::DeserializePlan(reblob);
  ASSERT_TRUE(back2.ok());
  EXPECT_TRUE(PlanEquals(back->pipeline, back2->pipeline));
}

TEST(PlanRoundTrip, Gpt) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  ExpectRoundTripIdentical(Compile(BuildGpt(config), ClusterSpec::AwsP3(1, 4), 8, 4));
}

TEST(PlanRoundTrip, Moe) {
  MoeConfig config;
  config.hidden = 128;
  config.num_layers = 4;
  config.num_heads = 8;
  config.num_experts = 4;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  config.ffn_mult = 4;
  ExpectRoundTripIdentical(Compile(BuildMoe(config), ClusterSpec::AwsP3(1, 4), 8, 4));
}

TEST(PlanRoundTrip, WideResNet) {
  WideResNetConfig config;
  config.microbatch = 8;
  config.base_channels = 64;
  config.width_factor = 2;
  ExpectRoundTripIdentical(Compile(BuildWideResNet(config), ClusterSpec::AwsP3(1, 4), 8, 8));
}

TEST(PlanRoundTrip, SimulatedStatsSurviveTheWire) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const ParallelPlan plan = Compile(BuildGpt(config), cluster, 8, 4);
  const StatusOr<ExecutionStats> stats = Simulate(plan, graph, cluster);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // A deserialized plan simulates to the exact same numbers: the wire
  // carries every input the simulator reads.
  const StatusOr<ParallelPlan> back = serve::DeserializePlan(serve::SerializePlan(plan));
  ASSERT_TRUE(back.ok());
  const StatusOr<ExecutionStats> stats_back = Simulate(*back, graph, cluster);
  ASSERT_TRUE(stats_back.ok()) << stats_back.status().ToString();
  EXPECT_EQ(stats->latency, stats_back->latency);
  EXPECT_EQ(stats->pflops, stats_back->pflops);
  EXPECT_EQ(stats->peak_memory_bytes, stats_back->peak_memory_bytes);
}

}  // namespace
}  // namespace alpa
