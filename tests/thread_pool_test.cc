#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace alpa {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIteration) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(1000, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ParallelForWritesDisjointSlots) {
  ThreadPool pool(4);
  std::vector<int64_t> out(500, -1);
  pool.ParallelFor(static_cast<int64_t>(out.size()),
                   [&](int64_t i) { out[static_cast<size_t>(i)] = i * i; });
  for (int64_t i = 0; i < static_cast<int64_t>(out.size()); ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPool, SubmittedTasksAllRunBeforeDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }  // The destructor drains the queues before joining.
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](int64_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> count{0};
  pool.ParallelFor(50, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // 8 outer x 8 inner iterations on 4 threads: workers reaching the inner
  // loop's join must help execute queued tasks instead of blocking, or the
  // pool deadlocks with every worker waiting.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(8, [&](int64_t) {
    pool.ParallelFor(8, [&](int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, FreeFunctionFallsBackToSerial) {
  std::atomic<int> count{0};
  ParallelFor(nullptr, 64, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
  ThreadPool one(1);
  ParallelFor(&one, 64, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 128);
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

}  // namespace
}  // namespace alpa
