#include "src/exec/transport.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include "src/exec/collectives.h"
#include "src/exec/host_tensor.h"
#include "src/exec/reshard_exec.h"
#include "src/mesh/cluster_spec.h"
#include "src/runtime/cross_mesh.h"

namespace alpa {
namespace exec {
namespace {

TEST(Transport, TaggedDeliveryAcrossThreadsAndByteCounters) {
  Transport transport(2);
  std::thread sender([&] {
    transport.Send(0, 1, MakeTag(kTagReshard, 5, 0, 1), {1.0f, 2.0f, 3.0f});
    // fp16 accounting: 2 bytes per element even though payloads are f32.
    transport.Send(0, 1, MakeTag(kTagReshard, 5, 0, 2), {4.0f}, 2, Channel::kCrossMesh);
  });
  // Receive in the opposite order: the mailbox buffers by tag.
  const std::vector<float> second = transport.Recv(1, MakeTag(kTagReshard, 5, 0, 2));
  const std::vector<float> first = transport.Recv(1, MakeTag(kTagReshard, 5, 0, 1));
  sender.join();
  EXPECT_EQ(first, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(second, (std::vector<float>{4.0f}));
  EXPECT_EQ(transport.LinkBytes(0, 1), 12 + 2);
  EXPECT_EQ(transport.LinkBytes(1, 0), 0);
  EXPECT_EQ(transport.TotalBytes(), 14);
  EXPECT_EQ(transport.ChannelBytes(Channel::kCollective), 12);
  EXPECT_EQ(transport.ChannelBytes(Channel::kCrossMesh), 2);
  EXPECT_EQ(transport.TotalMessages(), 2);
}

TEST(Transport, TagsSeparateKindsIdsMicrobatchesAndAux) {
  const uint64_t a = MakeTag(kTagRing, 7, 3, 11);
  EXPECT_NE(a, MakeTag(kTagAllGather, 7, 3, 11));
  EXPECT_NE(a, MakeTag(kTagRing, 8, 3, 11));
  EXPECT_NE(a, MakeTag(kTagRing, 7, 4, 11));
  EXPECT_NE(a, MakeTag(kTagRing, 7, 3, 12));
  // mb = -1 (update-time traffic) is representable and distinct.
  EXPECT_NE(MakeTag(kTagAllGather, 7, -1, 0), MakeTag(kTagAllGather, 7, 0, 0));
}

// Runs `fn(rank)` on one thread per group member.
void RunGroup(int k, const std::function<void(int)>& fn) {
  std::vector<std::thread> threads;
  for (int r = 0; r < k; ++r) {
    threads.emplace_back(fn, r);
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

// Table 1 (ring-based collectives on k devices, tensor of N bytes):
//   all-reduce       2(k-1)/k * N   per device
//   all-gather       (k-1)/k * N    per device
//   reduce-scatter   (k-1)/k * N    per device
//   all-to-all       (k-1)/k * N    per device
TEST(Collectives, RingAllReduceMatchesTable1AndSumsExactly) {
  for (int k : {2, 4, 8}) {
    const int64_t n = 64;  // Elements; divisible by every k.
    std::vector<int> group;
    for (int d = 0; d < k; ++d) {
      group.push_back(d);
    }
    Transport transport(k);
    std::vector<std::vector<float>> data(static_cast<size_t>(k));
    RunGroup(k, [&](int rank) {
      std::vector<float>& mine = data[static_cast<size_t>(rank)];
      mine.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        mine[static_cast<size_t>(i)] = GenValue(static_cast<uint64_t>(rank + 1), i);
      }
      RingAllReduce(transport, group, rank, mine, MakeTag(kTagRing, 1, 0, 0), 4);
    });
    // Correct sum, identical on every device (deterministic ring order).
    for (int64_t i = 0; i < n; ++i) {
      float expected = data[0][static_cast<size_t>(i)];
      for (int r = 1; r < k; ++r) {
        ASSERT_EQ(data[static_cast<size_t>(r)][static_cast<size_t>(i)],
                  data[0][static_cast<size_t>(i)])
            << "rank " << r << " diverged at " << i;
      }
      double sum = 0;
      for (int r = 0; r < k; ++r) {
        sum += GenValue(static_cast<uint64_t>(r + 1), i);
      }
      EXPECT_NEAR(expected, sum, 1e-5);
    }
    const int64_t per_device = 2 * (k - 1) * n * 4 / k;
    EXPECT_EQ(transport.TotalBytes(), per_device * k) << "k=" << k;
  }
}

TEST(Collectives, AccumRingChargesTheSameWireBytesAsFloatRing) {
  for (int k : {2, 4, 8}) {
    const int64_t n = 64;
    std::vector<int> group;
    for (int d = 0; d < k; ++d) {
      group.push_back(d);
    }
    Transport transport(k);
    std::vector<std::vector<double>> data(static_cast<size_t>(k));
    RunGroup(k, [&](int rank) {
      std::vector<double>& mine = data[static_cast<size_t>(rank)];
      mine.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        mine[static_cast<size_t>(i)] = GenValue(static_cast<uint64_t>(rank + 1), i);
      }
      RingAllReduceAccum(transport, group, rank, mine, MakeTag(kTagRing, 1, 0, 0), 4);
    });
    // Identical result everywhere, exact double sum in ring order, and the
    // wire accounting of the logical (f32) tensor — not the double payload.
    for (int64_t i = 0; i < n; ++i) {
      for (int r = 1; r < k; ++r) {
        ASSERT_EQ(data[static_cast<size_t>(r)][static_cast<size_t>(i)],
                  data[0][static_cast<size_t>(i)]);
      }
      EXPECT_NEAR(data[0][static_cast<size_t>(i)], [&] {
        double sum = 0;
        for (int r = 0; r < k; ++r) {
          sum += static_cast<double>(GenValue(static_cast<uint64_t>(r + 1), i));
        }
        return sum;
      }(), 1e-12);
    }
    EXPECT_EQ(transport.TotalBytes(), 2 * (k - 1) * n * 4 / k * k) << "k=" << k;
  }
}

TEST(Collectives, GatherScatterAllToAllMatchTable1) {
  for (int k : {2, 4, 8}) {
    const int64_t n = 64;  // Full-tensor elements.
    std::vector<int> group;
    for (int d = 0; d < k; ++d) {
      group.push_back(d);
    }
    const int64_t expected_per_device = (k - 1) * n * 4 / k;

    {  // All-gather: every rank contributes its n/k chunk.
      Transport transport(k);
      RunGroup(k, [&](int rank) {
        std::vector<float> mine(static_cast<size_t>(n / k),
                                static_cast<float>(rank));
        const auto chunks =
            AllGatherChunks(transport, group, rank, mine, MakeTag(kTagAllGather, 1, 0, 0), 4);
        ASSERT_EQ(static_cast<int>(chunks.size()), k);
        for (int p = 0; p < k; ++p) {
          for (float v : chunks[static_cast<size_t>(p)]) {
            ASSERT_EQ(v, static_cast<float>(p));
          }
        }
      });
      EXPECT_EQ(transport.TotalBytes(), expected_per_device * k) << "all-gather k=" << k;
    }

    {  // Reduce-scatter over the full tensor.
      Transport transport(k);
      RunGroup(k, [&](int rank) {
        std::vector<float> mine(static_cast<size_t>(n), 1.0f);
        const std::vector<float> chunk =
            ReduceScatter(transport, group, rank, mine, MakeTag(kTagAllGather, 2, 0, 0), 4);
        ASSERT_EQ(chunk.size(), static_cast<size_t>(n / k));
        for (float v : chunk) {
          ASSERT_EQ(v, static_cast<float>(k));
        }
      });
      EXPECT_EQ(transport.TotalBytes(), expected_per_device * k) << "reduce-scatter k=" << k;
    }

    {  // All-to-all: n/k elements to each peer.
      Transport transport(k);
      RunGroup(k, [&](int rank) {
        std::vector<std::vector<float>> to_peer(static_cast<size_t>(k));
        for (int p = 0; p < k; ++p) {
          to_peer[static_cast<size_t>(p)].assign(static_cast<size_t>(n / k),
                                                 static_cast<float>(rank * 100 + p));
        }
        const auto got =
            AllToAll(transport, group, rank, std::move(to_peer), MakeTag(kTagAllGather, 3, 0, 0), 4);
        for (int p = 0; p < k; ++p) {
          for (float v : got[static_cast<size_t>(p)]) {
            ASSERT_EQ(v, static_cast<float>(p * 100 + rank));
          }
        }
      });
      EXPECT_EQ(transport.TotalBytes(), expected_per_device * k) << "all-to-all k=" << k;
    }
  }
}

// The executed reshard program accounts exactly the planner's bytes, task
// by task, and moves the right cells (the small in-process version of the
// fig12 bench's oracle).
TEST(ReshardExec, ProgramMatchesPlanAndMovesCorrectData) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  MeshPlacement src_placement;
  src_placement.shape = SubmeshShape{1, 4};
  MeshPlacement dst_placement;
  dst_placement.shape = SubmeshShape{1, 4};
  dst_placement.device_begin = 4;
  const DeviceMesh src = DeviceMesh::Create(cluster, src_placement, {2, 2});
  const DeviceMesh dst = DeviceMesh::Create(cluster, dst_placement, {1, 4});
  const TensorShape shape{8, 12};
  const ShardingSpec src_spec = ShardingSpec::Make({DimSharding::kS0, DimSharding::kS1});
  const ShardingSpec dst_spec = ShardingSpec::OneDim(2, 1, DimSharding::kS1);

  for (ReshardStrategy strategy :
       {ReshardStrategy::kNaiveSendRecv, ReshardStrategy::kLocalAllGather}) {
    const CrossMeshPlan plan =
        PlanCrossMeshResharding(src, src_spec, dst, dst_spec, shape, 4, strategy);
    const ReshardProgram program =
        BuildReshardProgram(src, src_spec, dst, dst_spec, shape, 4, strategy);
    ASSERT_EQ(program.p2p.size(), plan.sends.size());
    for (size_t i = 0; i < program.p2p.size(); ++i) {
      EXPECT_EQ(program.p2p[i].src_device, plan.sends[i].src_device);
      EXPECT_EQ(program.p2p[i].dst_device, plan.sends[i].dst_device);
      EXPECT_NEAR(static_cast<double>(program.p2p[i].wire_bytes), plan.sends[i].bytes, 0.5);
    }

    HostTensor full(shape);
    for (int64_t i = 0; i < full.elements(); ++i) {
      full.data()[i] = GenValue(1, i);
    }
    std::vector<TileData> src_tiles(8);
    std::vector<TileData> dst_tiles(8);
    for (int r = 0; r < 4; ++r) {
      src_tiles[static_cast<size_t>(src.DeviceAt(r / 2, r % 2))] =
          ExtractTile(full, src_spec.TileSlice(shape, src, r / 2, r % 2));
      TileData& tile = dst_tiles[static_cast<size_t>(dst.DeviceAt(0, r))];
      tile.full_shape = shape;
      tile.box = dst_spec.TileSlice(shape, dst, 0, r);
      tile.data.assign(static_cast<size_t>(BoxElements(tile.box)), 0.0f);
    }
    Transport transport(8);
    std::vector<std::thread> threads;
    for (int device = 0; device < 8; ++device) {
      threads.emplace_back([&, device] {
        const TileData* src_tile =
            src_tiles[static_cast<size_t>(device)].valid() ? &src_tiles[static_cast<size_t>(device)] : nullptr;
        TileData* dst_tile =
            dst_tiles[static_cast<size_t>(device)].valid() ? &dst_tiles[static_cast<size_t>(device)] : nullptr;
        if (src_tile != nullptr || dst_tile != nullptr) {
          ExecuteReshardForDevice(transport, program, device, src_tile, dst_tile,
                                  MakeTag(kTagReshard, 1, 0, 0));
        }
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    for (int r = 0; r < 4; ++r) {
      const TileData& got = dst_tiles[static_cast<size_t>(dst.DeviceAt(0, r))];
      EXPECT_EQ(got.data, ExtractTile(full, got.box).data) << "dst rank " << r;
    }
    EXPECT_EQ(transport.ChannelBytes(Channel::kCrossMesh), program.total_p2p_bytes);
    EXPECT_EQ(transport.TotalBytes(), program.total_p2p_bytes + program.total_local_bytes);
    EXPECT_EQ(transport.ChannelBytes(Channel::kCrossMesh),
              static_cast<int64_t>(std::llround(plan.total_p2p_bytes)));
  }
}

TEST(ReshardExec, LocalAllGatherMovesFewerSlowPathBytesThanNaive) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 8);
  MeshPlacement src_placement;
  src_placement.shape = SubmeshShape{1, 8};
  MeshPlacement dst_placement;
  dst_placement.shape = SubmeshShape{1, 8};
  dst_placement.host_begin = 1;
  const DeviceMesh src = DeviceMesh::Create(cluster, src_placement, {1, 8});
  const DeviceMesh dst = DeviceMesh::Create(cluster, dst_placement, {1, 8});
  const TensorShape shape{16, 64};
  // Sender shards rows; receiver replicates -> an 8-way replica group.
  const ShardingSpec src_spec = ShardingSpec::OneDim(2, 0, DimSharding::kS1);
  const ShardingSpec dst_spec = ShardingSpec::Replicated(2);
  const ReshardProgram naive = BuildReshardProgram(src, src_spec, dst, dst_spec, shape, 4,
                                                   ReshardStrategy::kNaiveSendRecv);
  const ReshardProgram local = BuildReshardProgram(src, src_spec, dst, dst_spec, shape, 4,
                                                   ReshardStrategy::kLocalAllGather);
  EXPECT_LT(local.total_p2p_bytes, naive.total_p2p_bytes);
  EXPECT_GT(local.total_local_bytes, 0);
  // Slow-path traffic shrinks by the replica-group factor.
  EXPECT_EQ(local.total_p2p_bytes, naive.total_p2p_bytes / 8);
}

}  // namespace
}  // namespace exec
}  // namespace alpa
