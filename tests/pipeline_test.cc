#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/pipeline_schedule.h"
#include "src/runtime/simulator.h"

namespace alpa {
namespace {

using Kind = PipelineInstruction::Kind;

TEST(PipelineSchedule, GpipeOrder) {
  const auto schedule = BuildPipelineSchedule(PipelineScheduleType::kGpipe, 2, 3);
  ASSERT_EQ(schedule.size(), 2u);
  // F0 F1 F2 B0 B1 B2 U.
  ASSERT_EQ(schedule[0].size(), 7u);
  EXPECT_EQ(schedule[0][0].kind, Kind::kForward);
  EXPECT_EQ(schedule[0][2].microbatch, 2);
  EXPECT_EQ(schedule[0][3].kind, Kind::kBackward);
  EXPECT_EQ(schedule[0][6].kind, Kind::kUpdate);
}

TEST(PipelineSchedule, OneFOneBOrder) {
  const auto schedule = BuildPipelineSchedule(PipelineScheduleType::k1F1B, 4, 8);
  // Stage 0: 3 warmup forwards, then alternation.
  const auto& program = schedule[0];
  EXPECT_EQ(program[0].kind, Kind::kForward);
  EXPECT_EQ(program[1].kind, Kind::kForward);
  EXPECT_EQ(program[2].kind, Kind::kForward);
  EXPECT_EQ(program[3].kind, Kind::kForward);
  EXPECT_EQ(program[4].kind, Kind::kBackward);
  EXPECT_EQ(program[4].microbatch, 0);
  // Last stage: no warmup, strict alternation.
  EXPECT_EQ(schedule[3][0].kind, Kind::kForward);
  EXPECT_EQ(schedule[3][1].kind, Kind::kBackward);
}

TEST(PipelineSchedule, EveryMicrobatchAppearsOnce) {
  for (auto type : {PipelineScheduleType::kGpipe, PipelineScheduleType::k1F1B}) {
    const auto schedule = BuildPipelineSchedule(type, 3, 5);
    for (const auto& program : schedule) {
      int forwards = 0;
      int backwards = 0;
      int updates = 0;
      for (const auto& inst : program) {
        forwards += inst.kind == Kind::kForward ? 1 : 0;
        backwards += inst.kind == Kind::kBackward ? 1 : 0;
        updates += inst.kind == Kind::kUpdate ? 1 : 0;
      }
      EXPECT_EQ(forwards, 5);
      EXPECT_EQ(backwards, 5);
      EXPECT_EQ(updates, 1);
    }
  }
}

TEST(PipelineSchedule, InFlightBound) {
  EXPECT_EQ(MaxInFlightMicrobatches(PipelineScheduleType::k1F1B, 4, 0, 16), 4);
  EXPECT_EQ(MaxInFlightMicrobatches(PipelineScheduleType::k1F1B, 4, 3, 16), 1);
  EXPECT_EQ(MaxInFlightMicrobatches(PipelineScheduleType::kGpipe, 4, 0, 16), 16);
}

PipelineSimInput MakeInput(int stages, int microbatches, double tf = 0.1, double tb = 0.2) {
  PipelineSimInput input;
  input.num_microbatches = microbatches;
  for (int s = 0; s < stages; ++s) {
    StageExecProfile p;
    p.t_forward = tf;
    p.t_backward = tb;
    input.stages.push_back(p);
  }
  return input;
}

TEST(Simulator, SingleStageLatency) {
  auto input = MakeInput(1, 4);
  const auto result = SimulatePipeline(input);
  EXPECT_NEAR(result.latency, 4 * 0.3, 1e-9);
  EXPECT_NEAR(result.bubble_fraction, 0.0, 1e-9);
}

TEST(Simulator, PipelineLatencyMatchesEq2) {
  // Uniform stages, no transfer: Eq. 2 predicts sum + (B-1)*max.
  const int stages = 4;
  const int microbatches = 8;
  auto input = MakeInput(stages, microbatches);
  const auto result = SimulatePipeline(input);
  const double per_stage = 0.3;
  const double expected = stages * per_stage + (microbatches - 1) * per_stage;
  EXPECT_NEAR(result.latency, expected, 1e-9);
}

TEST(Simulator, GpipeSameLatencyAs1F1B) {
  // The paper (2.2): same theoretical latency, lower peak memory for 1F1B.
  auto input = MakeInput(4, 8);
  input.stages[0].act_bytes_per_microbatch = 1e9;
  input.schedule = PipelineScheduleType::k1F1B;
  const auto r1f1b = SimulatePipeline(input);
  input.schedule = PipelineScheduleType::kGpipe;
  const auto rgpipe = SimulatePipeline(input);
  EXPECT_NEAR(r1f1b.latency, rgpipe.latency, 1e-9);
  EXPECT_LT(r1f1b.stage_peak_bytes[0], rgpipe.stage_peak_bytes[0]);
}

TEST(Simulator, OneFOneBPeakMemoryBound) {
  const int stages = 4;
  const int microbatches = 16;
  auto input = MakeInput(stages, microbatches);
  for (auto& stage : input.stages) {
    stage.act_bytes_per_microbatch = 1.0;
  }
  const auto result = SimulatePipeline(input);
  for (int s = 0; s < stages; ++s) {
    EXPECT_LE(result.stage_peak_bytes[static_cast<size_t>(s)],
              MaxInFlightMicrobatches(PipelineScheduleType::k1F1B, stages, s, microbatches) +
                  1e-9)
        << s;
  }
}

TEST(Simulator, TransferDelaysPipeline) {
  auto fast = MakeInput(2, 4);
  const auto no_transfer = SimulatePipeline(fast);
  auto slow = MakeInput(2, 4);
  slow.stages[0].t_send_next = 0.5;
  const auto with_transfer = SimulatePipeline(slow);
  EXPECT_GT(with_transfer.latency, no_transfer.latency);
}

TEST(Simulator, OomDetection) {
  auto input = MakeInput(2, 4);
  input.device_memory_bytes = 1e9;
  input.stages[1].weight_bytes = 2e9;
  const auto result = SimulatePipeline(input);
  EXPECT_TRUE(result.oom);
  EXPECT_EQ(result.first_oom_stage, 1);
}

TEST(Simulator, UpdateRunsOncePerStage) {
  auto input = MakeInput(2, 4);
  input.stages[0].t_update = 1.0;
  input.stages[1].t_update = 2.0;
  const auto base = MakeInput(2, 4);
  const auto without = SimulatePipeline(base);
  const auto with = SimulatePipeline(input);
  // The last-finishing update extends the makespan by at most its duration.
  EXPECT_GE(with.latency, without.latency + 1.0);
  EXPECT_LE(with.latency, without.latency + 2.0 + 1e-9);
}

TEST(Simulator, BusyTimeAccounting) {
  auto input = MakeInput(3, 6);
  const auto result = SimulatePipeline(input);
  for (double busy : result.stage_busy_seconds) {
    EXPECT_NEAR(busy, 6 * 0.3, 1e-9);
  }
  EXPECT_GT(result.bubble_fraction, 0.0);
  EXPECT_LT(result.bubble_fraction, 0.5);
}

TEST(Simulator, ManyStagesManyMicrobatchesTerminates) {
  auto input = MakeInput(16, 64, 0.01, 0.02);
  const auto result = SimulatePipeline(input);
  EXPECT_GT(result.latency, 0.0);
  // Bubble fraction shrinks with B >> S.
  EXPECT_LT(result.bubble_fraction, 0.3);
}

TEST(SimulatorProperty, PeakInFlightEqualsScheduleBound) {
  // With unit-sized activations and no weights, a stage's peak bytes count
  // exactly its in-flight microbatches; that observed peak must EQUAL the
  // schedule's MaxInFlightMicrobatches bound (not merely stay below it),
  // for both schedules across stage/microbatch sweeps.
  for (auto type : {PipelineScheduleType::kGpipe, PipelineScheduleType::k1F1B}) {
    for (int stages : {1, 2, 3, 4, 6}) {
      for (int microbatches : {1, 2, 4, 8, 16}) {
        auto input = MakeInput(stages, microbatches);
        input.schedule = type;
        for (auto& stage : input.stages) {
          stage.act_bytes_per_microbatch = 1.0;
        }
        const auto result = SimulatePipeline(input);
        for (int s = 0; s < stages; ++s) {
          EXPECT_EQ(result.stage_peak_bytes[static_cast<size_t>(s)],
                    static_cast<double>(
                        MaxInFlightMicrobatches(type, stages, s, microbatches)))
              << "schedule=" << (type == PipelineScheduleType::kGpipe ? "gpipe" : "1f1b")
              << " S=" << stages << " M=" << microbatches << " stage=" << s;
        }
      }
    }
  }
}

TEST(SimulatorProperty, GpipeBubbleMatchesClosedForm) {
  // Uniform stages, no transfers, no update: GPipe's bubble fraction is
  // exactly (S-1)/(M+S-1).
  for (int stages : {1, 2, 4, 8}) {
    for (int microbatches : {1, 2, 4, 8, 32}) {
      auto input = MakeInput(stages, microbatches);
      input.schedule = PipelineScheduleType::kGpipe;
      const auto result = SimulatePipeline(input);
      const double expected =
          (stages - 1.0) / (microbatches + stages - 1.0);
      EXPECT_NEAR(result.bubble_fraction, expected, 1e-12)
          << "S=" << stages << " M=" << microbatches;
    }
  }
}

}  // namespace
}  // namespace alpa
