// The numeric-equivalence oracle (slow tier): real end-to-end execution of
// compiled plans on GPT, MoE and Wide-ResNet training graphs, checked
// against the single-device reference interpreter.
//
//   * kDeterministic: losses, accumulated gradients and updated parameters
//     must match BIT FOR BIT — any tensor routed to the wrong shard,
//     device, schedule slot or microbatch changes cells.
//   * kRing: eligible einsum contractions are split across mesh devices and
//     combined with a real ring all-reduce; partials stay double until
//     after the reduction, so the result still matches to 1e-5 relative.
//
// The measured transport traffic is also checked: executing the same plan
// twice moves exactly the same bytes, and ring mode moves strictly more
// collective traffic than deterministic mode on the same plan.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/api.h"
#include "src/exec/executor.h"
#include "src/exec/interpreter.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"

namespace alpa {
namespace {

using exec::ExecOptions;
using exec::ExecResult;
using exec::HostTensor;
using exec::ReductionMode;
using exec::ReferenceResult;

// Bit-for-bit comparison of an executed result against the reference.
void ExpectBitIdentical(const ExecResult& got, const ReferenceResult& want) {
  ASSERT_EQ(got.microbatch_loss.size(), want.microbatch_loss.size());
  for (size_t mb = 0; mb < want.microbatch_loss.size(); ++mb) {
    EXPECT_EQ(got.microbatch_loss[mb], want.microbatch_loss[mb]) << "loss of microbatch " << mb;
  }
  ASSERT_EQ(got.weight_grads.size(), want.weight_grads.size());
  ASSERT_EQ(got.updated_params.size(), want.updated_params.size());
  for (const auto& [name, grad] : want.weight_grads) {
    const auto it = got.weight_grads.find(name);
    ASSERT_NE(it, got.weight_grads.end()) << "missing gradient for " << name;
    EXPECT_EQ(it->second.vec(), grad.vec()) << "gradient of " << name;
  }
  for (const auto& [name, param] : want.updated_params) {
    const auto it = got.updated_params.find(name);
    ASSERT_NE(it, got.updated_params.end()) << "missing updated parameter " << name;
    EXPECT_EQ(it->second.vec(), param.vec()) << "updated " << name;
  }
}

// Mixed-tolerance comparison for the ring path: 1e-5 relative + 1e-6
// absolute per element.
void ExpectClose(const ExecResult& got, const ReferenceResult& want) {
  ASSERT_EQ(got.microbatch_loss.size(), want.microbatch_loss.size());
  for (size_t mb = 0; mb < want.microbatch_loss.size(); ++mb) {
    EXPECT_NEAR(got.microbatch_loss[mb], want.microbatch_loss[mb],
                1e-5 * std::fabs(want.microbatch_loss[mb]) + 1e-6);
  }
  for (const auto& [name, grad] : want.weight_grads) {
    const auto it = got.weight_grads.find(name);
    ASSERT_NE(it, got.weight_grads.end()) << name;
    ASSERT_EQ(it->second.elements(), grad.elements()) << name;
    for (int64_t i = 0; i < grad.elements(); ++i) {
      ASSERT_NEAR(it->second.data()[i], grad.data()[i],
                  1e-5 * std::fabs(grad.data()[i]) + 1e-6)
          << name << " element " << i;
    }
  }
}

struct RunResult {
  ParallelPlan plan;
  ExecResult det;
  ExecResult ring;
};

// Compiles `graph` into a 2-stage pipeline of 1x2 meshes on a 4-GPU host
// and executes it under both reduction modes.
RunResult CompileAndExecute(Graph& graph, int num_microbatches,
                            PipelineScheduleType schedule = PipelineScheduleType::k1F1B) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = num_microbatches;
  options.schedule = schedule;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  RunResult result;
  result.plan = *std::move(plan);

  ExecOptions exec_options;
  exec_options.reduction = ReductionMode::kDeterministic;
  StatusOr<ExecResult> det = ExecutePlan(result.plan, graph, cluster, exec_options);
  EXPECT_TRUE(det.ok()) << det.status().ToString();
  result.det = *std::move(det);

  exec_options.reduction = ReductionMode::kRing;
  StatusOr<ExecResult> ring = ExecutePlan(result.plan, graph, cluster, exec_options);
  EXPECT_TRUE(ring.ok()) << ring.status().ToString();
  result.ring = *std::move(ring);
  return result;
}

TEST(ExecEquivalence, GptMatchesReference) {
  GptConfig config;
  config.hidden = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 64;
  Graph graph = BuildGpt(config);
  const ReferenceResult ref = exec::RunReference(graph, 3, 0);
  const RunResult run = CompileAndExecute(graph, 3);
  ASSERT_GE(run.plan.pipeline.stages.size(), 2u);
  ExpectBitIdentical(run.det, ref);
  ExpectClose(run.ring, ref);
  // Pipelining + sharding actually moved data, and the ring mode moved
  // strictly more collective traffic (real all-reduce steps).
  EXPECT_GT(run.det.cross_mesh_bytes, 0);
  EXPECT_GT(run.det.collective_bytes, 0);
  EXPECT_GT(run.ring.collective_bytes, run.det.collective_bytes);
  EXPECT_EQ(run.det.num_devices, 4);
}

TEST(ExecEquivalence, GptUnderGpipeScheduleIsStillBitIdentical) {
  GptConfig config;
  config.hidden = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 64;
  Graph graph = BuildGpt(config);
  const ReferenceResult ref = exec::RunReference(graph, 4, 0);
  const RunResult run = CompileAndExecute(graph, 4, PipelineScheduleType::kGpipe);
  // Gradient accumulation order is fixed at the update, so the schedule's
  // backward interleaving cannot change a single bit.
  ExpectBitIdentical(run.det, ref);
}

TEST(ExecEquivalence, MoeMatchesReference) {
  MoeConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.num_experts = 2;
  config.ffn_mult = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 32;
  Graph graph = BuildMoe(config);
  const ReferenceResult ref = exec::RunReference(graph, 2, 0);
  const RunResult run = CompileAndExecute(graph, 2);
  ExpectBitIdentical(run.det, ref);
  ExpectClose(run.ring, ref);
}

TEST(ExecEquivalence, WideResNetMatchesReference) {
  WideResNetConfig config;
  config.microbatch = 1;
  config.base_channels = 8;
  config.width_factor = 1;
  config.num_classes = 16;
  Graph graph = BuildWideResNet(config);
  const ReferenceResult ref = exec::RunReference(graph, 2, 0);
  const RunResult run = CompileAndExecute(graph, 2);
  ExpectBitIdentical(run.det, ref);
  ExpectClose(run.ring, ref);
}

TEST(ExecEquivalence, ExecutionIsReproducibleIncludingByteCounters) {
  GptConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 4;
  config.vocab = 32;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 2;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const StatusOr<ExecResult> a = ExecutePlan(*plan, graph, cluster, {});
  const StatusOr<ExecResult> b = ExecutePlan(*plan, graph, cluster, {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->microbatch_loss, b->microbatch_loss);
  EXPECT_EQ(a->total_bytes, b->total_bytes);
  EXPECT_EQ(a->cross_mesh_bytes, b->cross_mesh_bytes);
  EXPECT_EQ(a->collective_bytes, b->collective_bytes);
  EXPECT_EQ(a->total_messages, b->total_messages);
  // A different data seed changes the numbers but not the traffic: the
  // byte counts are a pure function of the plan.
  ExecOptions seeded;
  seeded.data_seed = 7;
  const StatusOr<ExecResult> c = ExecutePlan(*plan, graph, cluster, seeded);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->microbatch_loss, c->microbatch_loss);
  EXPECT_EQ(a->total_bytes, c->total_bytes);
}

TEST(ExecEquivalence, AnnotateProgramsFillsBoundaryTensorIds) {
  GptConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 4;
  config.vocab = 32;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 2;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_GE(plan->pipeline.stages.size(), 2u);

  std::vector<MeshProgram> programs =
      EmitPipelinePrograms(PipelineScheduleType::k1F1B,
                           static_cast<int>(plan->pipeline.stages.size()), 2);
  exec::AnnotatePrograms(graph, plan->pipeline, &programs);
  int annotated_sends = 0;
  for (const MeshProgram& program : programs) {
    for (const MeshInstruction& inst : program.instructions) {
      const bool transfer = inst.kind == InstructionKind::kSendActivation ||
                            inst.kind == InstructionKind::kRecvActivation ||
                            inst.kind == InstructionKind::kSendGradient ||
                            inst.kind == InstructionKind::kRecvGradient;
      if (!transfer) {
        EXPECT_TRUE(inst.tensor_ids.empty());
        continue;
      }
      EXPECT_FALSE(inst.tensor_ids.empty()) << inst.ToString();
      for (int id : inst.tensor_ids) {
        ASSERT_GE(id, 0);
        ASSERT_LT(id, graph.size());
      }
      ++annotated_sends;
    }
  }
  EXPECT_GT(annotated_sends, 0);
}

TEST(ExecEquivalence, RejectsDriftedSimInputAndSignalOnlyPlans) {
  GptConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 4;
  config.vocab = 32;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 2;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  const StatusOr<ParallelPlan> compiled = Parallelize(graph, cluster, options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  {  // Microbatch-count drift between plan and sim input.
    ParallelPlan plan = *compiled;
    plan.sim_input.num_microbatches = 5;
    const StatusOr<ExecResult> result = ExecutePlan(plan, graph, cluster, {});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {  // Stage-device drift: the executor refuses placements that do not
     // come from the single BuildPipelineSimInput construction path.
    ParallelPlan plan = *compiled;
    ASSERT_FALSE(plan.sim_input.stage_devices.empty());
    ASSERT_FALSE(plan.sim_input.stage_devices[0].empty());
    plan.sim_input.stage_devices[0][0] += 1;
    const StatusOr<ExecResult> result = ExecutePlan(plan, graph, cluster, {});
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {  // kSignalOnly cannot carry tensors.
    exec::ExecOptions exec_options;
    exec_options.reshard = ReshardStrategy::kSignalOnly;
    const StatusOr<ExecResult> result = ExecutePlan(*compiled, graph, cluster, exec_options);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace alpa
