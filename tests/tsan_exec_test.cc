// ThreadSanitizer harness for the SPMD executor.
//
// Runs a tiny GPT end to end — compile, then real execution with one worker
// thread per device over the shared-memory transport — under
// -fsanitize=thread (the whole binary, library sources included, is
// instrumented by tests/CMakeLists.txt). All tensor data crosses threads by
// value through the transport's mutex-guarded mailboxes; any racy shortcut
// (shared buffer, unguarded counter, result write outside result_mu) fails
// the run. Both reduction modes execute, and the deterministic one must
// still match the reference interpreter bit for bit. Kept small: TSan slows
// execution by an order of magnitude.
#include <cstdio>

#include "src/core/api.h"
#include "src/exec/interpreter.h"
#include "src/models/gpt.h"

int main() {
  using namespace alpa;

  GptConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 4;
  config.vocab = 32;
  Graph graph = BuildGpt(config);

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 2;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  if (!plan.ok()) {
    std::fprintf(stderr, "Parallelize failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  if (plan->pipeline.stages.size() < 2) {
    std::fprintf(stderr, "expected a multi-stage pipeline, got %zu\n",
                 plan->pipeline.stages.size());
    return 1;
  }

  const exec::ReferenceResult ref = exec::RunReference(graph, 2, 0);

  for (const exec::ReductionMode mode :
       {exec::ReductionMode::kDeterministic, exec::ReductionMode::kRing}) {
    exec::ExecOptions exec_options;
    exec_options.reduction = mode;
    const StatusOr<exec::ExecResult> result = ExecutePlan(*plan, graph, cluster, exec_options);
    if (!result.ok()) {
      std::fprintf(stderr, "ExecutePlan failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    if (mode != exec::ReductionMode::kDeterministic) {
      continue;
    }
    // Bit-identity check (losses + every gradient cell).
    for (size_t mb = 0; mb < ref.microbatch_loss.size(); ++mb) {
      if (result->microbatch_loss[mb] != ref.microbatch_loss[mb]) {
        std::fprintf(stderr, "loss mismatch at microbatch %zu\n", mb);
        return 1;
      }
    }
    for (const auto& [name, grad] : ref.weight_grads) {
      const auto it = result->weight_grads.find(name);
      if (it == result->weight_grads.end() || it->second.vec() != grad.vec()) {
        std::fprintf(stderr, "gradient mismatch for %s\n", name.c_str());
        return 1;
      }
    }
  }
  std::printf("executor TSan equivalence OK\n");
  return 0;
}
