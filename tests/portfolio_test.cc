// The solver portfolio (GRASP + simulated annealing racing the flat branch
// & bound): exactness on small instances, determinism for any thread count
// and across reruns, incumbent sharing (the metaheuristic bound must prune
// the exact search), and the anytime abort contract end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/inter/inter_pass.h"
#include "src/intra/ilp_cache.h"
#include "src/models/gpt.h"
#include "src/solver/anneal.h"
#include "src/solver/flat_bnb.h"
#include "src/solver/flat_core.h"
#include "src/solver/grasp.h"
#include "src/solver/ilp_solver.h"
#include "src/solver/portfolio.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

// Exhaustive brute force for small problems.
double BruteForce(const IlpProblem& problem) {
  std::vector<int> choice(static_cast<size_t>(problem.num_nodes()), 0);
  double best = kInfCost;
  while (true) {
    best = std::min(best, problem.Evaluate(choice));
    int i = 0;
    while (i < problem.num_nodes()) {
      if (++choice[static_cast<size_t>(i)] < problem.num_choices(i)) {
        break;
      }
      choice[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == problem.num_nodes()) {
      break;
    }
  }
  return best;
}

IlpProblem RandomProblem(Rng& rng, int nodes, int max_choices, double edge_prob) {
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_choices)));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[static_cast<size_t>(v)].push_back(rng.NextDouble(0, 10));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() > edge_prob) {
        continue;
      }
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          row.push_back(rng.NextDouble(0, 5));
        }
      }
      problem.edges.push_back(std::move(edge));
    }
  }
  return problem;
}

// The abort-prone instance from the flat branch & bound's budget
// redistribution tests: dense enough that tight budgets genuinely bind.
IlpProblem AbortProneProblem() {
  Rng rng(45);
  return RandomProblem(rng, 14, 5, 0.8);
}

TEST(Grasp, ConstructionsAreFeasibleAndDeterministic) {
  const IlpProblem problem = AbortProneProblem();
  const FlatCore f = BuildFlatCore(problem);
  GraspOptions options;
  options.restarts = 8;
  const GraspResult serial = RunGrasp(f, options);
  ASSERT_TRUE(serial.feasible);
  ASSERT_EQ(static_cast<int>(serial.choice.size()), f.n);
  EXPECT_EQ(serial.restarts_run, 8);
  EXPECT_GT(serial.evaluations, 0);
  // ICM-polished: no single-node move may improve the construction.
  EXPECT_EQ(FlatIcm(f, serial.choice), serial.choice);

  ThreadPool pool(4);
  GraspOptions pooled = options;
  pooled.pool = &pool;
  const GraspResult parallel = RunGrasp(f, pooled);
  EXPECT_EQ(parallel.choice, serial.choice);
  EXPECT_EQ(parallel.objective, serial.objective);
}

TEST(Anneal, NeverLosesToItsStartAndIsDeterministic) {
  const IlpProblem problem = AbortProneProblem();
  const FlatCore f = BuildFlatCore(problem);
  const std::vector<int> start = FlatIcm(f, ArgminStart(f));
  const double start_value = FlatValue(f, start);

  AnnealOptions options;
  options.chains = 4;
  options.steps_per_chain = 5'000;
  const AnnealResult serial = RunAnneal(f, start, options);
  ASSERT_TRUE(serial.feasible);
  EXPECT_LE(serial.objective, start_value);
  EXPECT_EQ(serial.steps, 4 * 5'000);
  // The recorded objective must be the exact value of the recorded
  // assignment (no incremental-delta drift).
  EXPECT_EQ(FlatValue(f, serial.choice), serial.objective);

  ThreadPool pool(4);
  AnnealOptions pooled = options;
  pooled.pool = &pool;
  const AnnealResult parallel = RunAnneal(f, start, pooled);
  EXPECT_EQ(parallel.choice, serial.choice);
  EXPECT_EQ(parallel.objective, serial.objective);
}

TEST(Portfolio, MatchesBruteForceOnSmallRandomInstances) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const IlpProblem problem = RandomProblem(rng, 8, 3, 0.5);
    IlpSolverOptions options;
    options.engine = IlpEngine::kPortfolio;
    options.max_elimination_table = 0;  // Force the search path.
    options.use_core_memo = false;
    const IlpSolution solution = IlpSolver(options).Solve(problem);
    ASSERT_TRUE(solution.optimal) << "seed " << seed;
    EXPECT_DOUBLE_EQ(solution.objective, BruteForce(problem)) << "seed " << seed;
    EXPECT_DOUBLE_EQ(solution.lower_bound, solution.objective) << "seed " << seed;
  }
}

TEST(Portfolio, DeterministicAcrossThreadCountsAndReruns) {
  const IlpProblem problem = AbortProneProblem();
  PortfolioOptions options;
  options.budget = 20'000;  // Abort-prone: the full search needs more.
  const PortfolioResult serial = SolvePortfolio(problem, options);
  ASSERT_TRUE(serial.feasible);

  const PortfolioResult rerun = SolvePortfolio(problem, options);
  EXPECT_EQ(rerun.choice, serial.choice);
  EXPECT_EQ(rerun.objective, serial.objective);
  EXPECT_EQ(rerun.lower_bound, serial.lower_bound);
  EXPECT_EQ(rerun.explored, serial.explored);

  for (const int threads : {2, 4}) {
    ThreadPool pool(threads);
    PortfolioOptions pooled = options;
    pooled.pool = &pool;
    const PortfolioResult parallel = SolvePortfolio(problem, pooled);
    EXPECT_EQ(parallel.choice, serial.choice) << threads << " threads";
    EXPECT_EQ(parallel.objective, serial.objective) << threads << " threads";
    EXPECT_EQ(parallel.lower_bound, serial.lower_bound) << threads << " threads";
    EXPECT_EQ(parallel.explored, serial.explored) << threads << " threads";
    EXPECT_EQ(parallel.aborted, serial.aborted) << threads << " threads";
  }
}

// Incumbent sharing, measured: handing the metaheuristic incumbent to the
// exact search as its initial bound must strictly reduce the nodes the
// search explores to prove the same optimum.
TEST(Portfolio, SharedIncumbentBoundPrunesTheExactSearch) {
  const IlpProblem problem = AbortProneProblem();
  const FlatCore f = BuildFlatCore(problem);

  FlatSearchOptions plain;
  plain.budget = 100'000'000;
  const FlatSearchResult unaided = SolveCoreOnFlat(f, plain);
  ASSERT_FALSE(unaided.aborted);
  ASSERT_GT(unaided.explored, 1000);  // Non-trivial search.

  GraspOptions gopt;
  gopt.restarts = 16;
  const GraspResult grasp = RunGrasp(f, gopt);
  ASSERT_TRUE(grasp.feasible);
  AnnealOptions aopt;
  aopt.steps_per_chain = 10'000;
  const AnnealResult sa = RunAnneal(f, grasp.choice, aopt);
  ASSERT_LE(sa.objective, grasp.objective);

  FlatSearchOptions bounded = plain;
  bounded.incumbents.push_back(sa.choice);
  const FlatSearchResult aided = SolveCoreOnFlat(f, bounded);
  ASSERT_FALSE(aided.aborted);
  // Same optimum, but the aided run may return the incumbent's value, which
  // is summed in a different order than the search's accumulation — ULP
  // equality, not bitwise (bitwise only holds along identical code paths).
  EXPECT_DOUBLE_EQ(aided.objective, unaided.objective);
  EXPECT_LT(aided.explored, unaided.explored);
}

// End-to-end anytime contract through IlpSolver: a starved portfolio solve
// returns the best incumbent plus a real, bracketed optimality gap.
TEST(Portfolio, AbortReturnsIncumbentAndGap) {
  const IlpProblem problem = AbortProneProblem();

  IlpSolverOptions unbounded;
  unbounded.engine = IlpEngine::kStaged;
  unbounded.max_elimination_table = 0;
  unbounded.use_core_memo = false;
  unbounded.max_search_nodes = 100'000'000;
  const IlpSolution full = IlpSolver(unbounded).Solve(problem);
  ASSERT_TRUE(full.optimal);

  IlpSolverOptions starved;
  starved.engine = IlpEngine::kPortfolio;
  starved.max_elimination_table = 0;
  starved.use_core_memo = false;
  starved.max_search_nodes = full.nodes_explored / 8;
  const IlpSolution anytime = IlpSolver(starved).Solve(problem);
  ASSERT_TRUE(anytime.feasible);
  if (anytime.optimal) {
    // The metaheuristic bound can let the starved search finish outright;
    // then the gap must be closed exactly.
    EXPECT_EQ(anytime.method, "portfolio");
    EXPECT_DOUBLE_EQ(anytime.objective, full.objective);
    EXPECT_DOUBLE_EQ(anytime.optimality_gap(), 0.0);
  } else {
    EXPECT_EQ(anytime.method, "portfolio(budget)");
    EXPECT_LE(anytime.lower_bound, full.objective);
    EXPECT_GE(anytime.objective, full.objective);
    EXPECT_GE(anytime.optimality_gap(), 0.0);
    EXPECT_LT(anytime.optimality_gap(), 1.0);
  }
}

// A portfolio solve under the default engine must agree with the staged
// engine wherever both prove optimality.
TEST(Portfolio, AgreesWithStagedWhenBothOptimal) {
  for (uint64_t seed = 20; seed <= 26; ++seed) {
    Rng rng(seed);
    const IlpProblem problem = RandomProblem(rng, 12, 4, 0.4);
    IlpSolverOptions options;
    options.max_elimination_table = 0;
    options.use_core_memo = false;
    options.engine = IlpEngine::kStaged;
    const IlpSolution staged = IlpSolver(options).Solve(problem);
    options.engine = IlpEngine::kPortfolio;
    const IlpSolution portfolio = IlpSolver(options).Solve(problem);
    ASSERT_EQ(staged.optimal, portfolio.optimal) << "seed " << seed;
    if (staged.optimal) {
      EXPECT_DOUBLE_EQ(staged.objective, portfolio.objective) << "seed " << seed;
    }
  }
}

// Compile-level determinism under the default (portfolio) engine with a
// starved budget, so the metaheuristic rounds genuinely run: 1 and 4
// compile threads must produce PlanEquals-identical plans.
TEST(Portfolio, CompiledPlanIdenticalAcrossThreadCounts) {
  GptConfig config;
  config.hidden = 128;
  config.num_layers = 2;
  config.num_heads = 4;
  config.microbatch = 2;
  config.seq_len = 64;
  config.vocab = 512;
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  InterOpOptions options;
  options.num_microbatches = 4;
  options.target_layers = 2;
  options.profiler.intra.solver.engine = IlpEngine::kPortfolio;
  options.profiler.intra.solver.max_search_nodes = 5'000;

  IlpMemoCache::Global().Clear();
  Graph serial_graph = BuildGpt(config);
  options.compile_threads = 1;
  const CompiledPipeline serial = RunInterOpPass(serial_graph, cluster, options);

  IlpMemoCache::Global().Clear();
  Graph parallel_graph = BuildGpt(config);
  options.compile_threads = 4;
  const CompiledPipeline parallel = RunInterOpPass(parallel_graph, cluster, options);

  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_TRUE(PlanEquals(serial, parallel));
  EXPECT_EQ(serial.dp_latency, parallel.dp_latency);
}

}  // namespace
}  // namespace alpa
