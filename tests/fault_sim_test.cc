#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/mesh/fault_spec.h"
#include "src/runtime/simulator.h"

namespace alpa {
namespace {

PipelineSimInput MakeInput(int stages, int microbatches, double send = 0.0) {
  PipelineSimInput input;
  input.num_microbatches = microbatches;
  for (int s = 0; s < stages; ++s) {
    StageExecProfile p;
    p.t_forward = 0.1;
    p.t_backward = 0.2;
    if (s + 1 < stages) {
      p.t_send_next = send;
    }
    input.stages.push_back(p);
  }
  return input;
}

TEST(FaultSpec, RetryPenaltyClosedForm) {
  RetryPolicy policy;
  policy.timeout = 5e-3;
  policy.backoff = 1e-3;
  policy.backoff_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(policy.PenaltySeconds(0), 0.0);
  // Each lost attempt costs its timeout plus the wait before the next try:
  // 3 * 5ms + (1 + 2 + 4) ms.
  EXPECT_DOUBLE_EQ(policy.PenaltySeconds(3), 3 * 5e-3 + 7e-3);
}

TEST(FaultSpec, AccessorsAndWildcards) {
  FaultSpec spec;
  EXPECT_TRUE(spec.empty());
  int device = -1;
  EXPECT_TRUE(std::isinf(spec.EarliestFailure({0, 1}, &device)));
  EXPECT_DOUBLE_EQ(spec.ComputeSlowdown({0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(spec.LinkBandwidthFactor(0, 1), 1.0);

  spec.device_failures.push_back(DeviceFailure{3, 7.0});
  spec.device_failures.push_back(DeviceFailure{1, 2.0});
  spec.stragglers.push_back(Straggler{2, 1.5});
  spec.link_degradations.push_back(LinkDegradation{-1, 1, 0.25});  // Any -> host 1.
  EXPECT_FALSE(spec.empty());
  EXPECT_DOUBLE_EQ(spec.EarliestFailure({1, 3}, &device), 2.0);
  EXPECT_EQ(device, 1);
  EXPECT_DOUBLE_EQ(spec.ComputeSlowdown({0, 2}), 1.5);
  EXPECT_DOUBLE_EQ(spec.ComputeSlowdown({0, 3}), 1.0);
  EXPECT_DOUBLE_EQ(spec.LinkBandwidthFactor(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(spec.LinkBandwidthFactor(2, 1), 0.25);
  EXPECT_DOUBLE_EQ(spec.LinkBandwidthFactor(1, 0), 1.0);
}

// The acceptance-critical regression lock: a FaultSpec that is present but
// describes no effective fault must reproduce the fault-free simulator
// results bit-for-bit (all multipliers are exactly 1.0).
TEST(FaultSim, BenignFaultSpecBitIdentical) {
  const auto baseline = SimulatePipeline(MakeInput(4, 8, /*send=*/0.013));

  auto input = MakeInput(4, 8, /*send=*/0.013);
  input.faults.stragglers.push_back(Straggler{1, 1.0});  // Neutral slowdown.
  input.faults.link_degradations.push_back(LinkDegradation{-1, -1, 1.0});
  input.faults.device_failures.push_back(
      DeviceFailure{2, std::numeric_limits<double>::infinity()});
  input.stage_devices = {{0}, {1}, {2}, {3}};
  ASSERT_FALSE(input.faults.empty());
  const auto result = SimulatePipeline(input);

  EXPECT_EQ(result.latency, baseline.latency);  // Exact, not NEAR.
  EXPECT_EQ(result.bubble_fraction, baseline.bubble_fraction);
  for (size_t s = 0; s < baseline.stage_busy_seconds.size(); ++s) {
    EXPECT_EQ(result.stage_busy_seconds[s], baseline.stage_busy_seconds[s]);
    EXPECT_EQ(result.stage_peak_bytes[s], baseline.stage_peak_bytes[s]);
  }
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.send_retries, 0);
  EXPECT_DOUBLE_EQ(result.retry_seconds, 0.0);
}

TEST(FaultSim, StragglerStretchesItsStage) {
  const auto baseline = SimulatePipeline(MakeInput(2, 4));
  auto input = MakeInput(2, 4);
  input.faults.stragglers.push_back(Straggler{1, 2.0});
  const auto result = SimulatePipeline(input);
  // Stage 1 (device 1 by the default identity mapping) runs at half speed.
  EXPECT_DOUBLE_EQ(result.stage_busy_seconds[1], 2.0 * baseline.stage_busy_seconds[1]);
  EXPECT_DOUBLE_EQ(result.stage_busy_seconds[0], baseline.stage_busy_seconds[0]);
  EXPECT_GT(result.latency, baseline.latency);
  EXPECT_FALSE(result.failed);
}

TEST(FaultSim, DegradedLinkEqualsSlowerTransfer) {
  // Halving the 0 -> 1 link bandwidth must behave exactly like doubling the
  // boundary's transfer time.
  auto degraded = MakeInput(2, 4, /*send=*/0.01);
  degraded.faults.link_degradations.push_back(LinkDegradation{0, 1, 0.5});
  degraded.stage_devices = {{0}, {1}};

  const auto expected = SimulatePipeline(MakeInput(2, 4, /*send=*/0.02));
  const auto result = SimulatePipeline(degraded);
  EXPECT_DOUBLE_EQ(result.latency, expected.latency);
  EXPECT_GT(result.latency, SimulatePipeline(MakeInput(2, 4, 0.01)).latency);
}

TEST(FaultSim, TransientRetriesAreDeterministicAndCharged) {
  auto input = MakeInput(2, 8, /*send=*/0.01);
  input.faults.transient_send_failure_rate = 0.2;
  input.faults.seed = 42;
  const auto healthy = SimulatePipeline(MakeInput(2, 8, /*send=*/0.01));
  const auto first = SimulatePipeline(input);
  const auto second = SimulatePipeline(input);

  EXPECT_EQ(first.latency, second.latency);  // Same seed, same outcome.
  EXPECT_EQ(first.send_retries, second.send_retries);
  EXPECT_EQ(first.retry_seconds, second.retry_seconds);
  EXPECT_GT(first.send_retries, 0);
  EXPECT_GT(first.retry_seconds, 0.0);
  EXPECT_GT(first.latency, healthy.latency);
}

TEST(FaultSim, ExhaustedRetriesAbortTheTransfer) {
  auto input = MakeInput(2, 4, /*send=*/0.01);
  input.faults.transient_send_failure_rate = 1.0;  // Every attempt is lost.
  input.record_timeline = true;
  const auto result = SimulatePipeline(input);
  ASSERT_TRUE(result.failed);
  EXPECT_EQ(result.failed_stage, 1);    // The receiver never gets microbatch 0.
  EXPECT_EQ(result.failed_device, -1);  // No device died.
  EXPECT_GE(result.send_retries, input.faults.retry.max_attempts);
  EXPECT_GT(result.wasted_work_seconds, 0.0);  // Stage 0's forwards are lost.
  bool saw_retry = false;
  bool saw_abort = false;
  for (const FaultEvent& event : result.fault_timeline) {
    saw_retry |= event.kind == FaultEvent::Kind::kRetry;
    saw_abort |= event.kind == FaultEvent::Kind::kTransferAbort;
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_TRUE(saw_abort);
}

TEST(FaultSim, PermanentFailureHaltsStageAndReports) {
  auto input = MakeInput(2, 4);
  input.faults.device_failures.push_back(DeviceFailure{1, 0.35});
  input.record_timeline = true;
  const auto result = SimulatePipeline(input);
  const auto baseline = SimulatePipeline(MakeInput(2, 4));

  ASSERT_TRUE(result.failed);
  EXPECT_EQ(result.failed_stage, 1);
  EXPECT_EQ(result.failed_device, 1);
  EXPECT_DOUBLE_EQ(result.failure_time, 0.35);
  EXPECT_DOUBLE_EQ(result.detection_time, 0.35 + input.faults.detection_timeout);
  // All work in the aborted iteration is wasted; the failed stage's busy
  // time is truncated at the failure.
  EXPECT_GT(result.wasted_work_seconds, 0.0);
  EXPECT_LE(result.stage_busy_seconds[1], 0.35);
  EXPECT_LT(result.stage_busy_seconds[0], baseline.stage_busy_seconds[0]);

  bool saw_failure = false;
  bool saw_detection = false;
  for (const FaultEvent& event : result.fault_timeline) {
    saw_failure |= event.kind == FaultEvent::Kind::kDeviceFailure && event.device == 1;
    saw_detection |= event.kind == FaultEvent::Kind::kDetection;
  }
  EXPECT_TRUE(saw_failure);
  EXPECT_TRUE(saw_detection);
}

TEST(FaultSim, FailureAfterCompletionIsHarmless) {
  auto input = MakeInput(2, 4);
  input.faults.device_failures.push_back(DeviceFailure{1, 1e9});
  const auto result = SimulatePipeline(input);
  const auto baseline = SimulatePipeline(MakeInput(2, 4));
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.latency, baseline.latency);
}

TEST(FaultSim, StageDevicesResolvePerDeviceFaults) {
  // A straggler on device 5 only affects the stage whose device set holds 5.
  auto input = MakeInput(2, 4);
  input.stage_devices = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  input.devices_per_host = 4;
  input.faults.stragglers.push_back(Straggler{5, 3.0});
  const auto result = SimulatePipeline(input);
  const auto baseline = SimulatePipeline(MakeInput(2, 4));
  EXPECT_DOUBLE_EQ(result.stage_busy_seconds[0], baseline.stage_busy_seconds[0]);
  EXPECT_DOUBLE_EQ(result.stage_busy_seconds[1], 3.0 * baseline.stage_busy_seconds[1]);
}

}  // namespace
}  // namespace alpa
