// Plan-cache tests: key coverage (graph names/layers, cluster extent,
// options, profile-source fingerprint), eligibility rules, the
// memory+disk lookup path with restart survival, the PR-6 regression
// (a measured-profile recompile must MISS the analytical-cost entry),
// single-flight dedup under a concurrent cold storm, and the LRU
// eviction caps that bound the disk store.
#include "src/serve/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "src/core/api.h"
#include "src/inter/profile_feedback.h"
#include "src/models/mlp.h"
#include "src/serve/service.h"
#include "src/support/trace.h"

namespace alpa {
namespace serve {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    PlanCache::Global().SetLimits(PlanCacheLimits{});
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
  }
  void TearDown() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    PlanCache::Global().SetLimits(PlanCacheLimits{});
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    if (!temp_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(temp_dir_, ec);
    }
  }

  std::string TempDir() {
    temp_dir_ = (std::filesystem::temp_directory_path() /
                 ("alpa_plan_cache_test_" +
                  std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                  ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                    .string();
    return temp_dir_;
  }

  std::string temp_dir_;
};

ParallelizeOptions FinalizedOptions() {
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 2;
  EXPECT_TRUE(options.Finalize().ok());
  return options;
}

TEST_F(PlanCacheTest, KeyCoversGraphNamesAndLayers) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const ParallelizeOptions options = FinalizedOptions();
  Graph a = BuildMlp(MlpConfig{});
  Graph b = BuildMlp(MlpConfig{});
  PlanCacheKey key_a;
  PlanCacheKey key_b;
  ASSERT_TRUE(ComputePlanCacheKey(a, cluster, options, &key_a));
  ASSERT_TRUE(ComputePlanCacheKey(b, cluster, options, &key_b));
  EXPECT_EQ(key_a, key_b);  // Deterministic.

  // Unlike StructuralHash, the plan key sees names and layer tags: the
  // clustering pass reads both, so plans for the graphs can differ.
  Graph renamed = BuildMlp(MlpConfig{});
  const_cast<Operator&>(renamed.ops()[1]).layer += 1;
  PlanCacheKey key_renamed;
  ASSERT_TRUE(ComputePlanCacheKey(renamed, cluster, options, &key_renamed));
  EXPECT_NE(key_a.graph_hash, key_renamed.graph_hash);
}

TEST_F(PlanCacheTest, KeyCoversClusterExtentAndOptions) {
  Graph graph = BuildMlp(MlpConfig{});
  const ParallelizeOptions options = FinalizedOptions();
  PlanCacheKey on2;
  PlanCacheKey on4;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), options, &on2));
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 4), options, &on4));
  // The ILP memo deliberately ignores cluster extent; the plan cache must
  // not — a whole-plan result depends on the device count.
  EXPECT_NE(on2.config_hash, on4.config_hash);

  ParallelizeOptions other = FinalizedOptions();
  other.inter.num_microbatches = 8;
  PlanCacheKey key_other;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), other, &key_other));
  EXPECT_NE(on2.config_hash, key_other.config_hash);

  // Thread count is plan-invariant by the determinism guarantee, so it
  // must NOT split the cache.
  ParallelizeOptions threaded = FinalizedOptions();
  threaded.inter.compile_threads = 4;
  PlanCacheKey key_threaded;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), threaded, &key_threaded));
  EXPECT_EQ(on2, key_threaded);
}

TEST_F(PlanCacheTest, ClosuresAreUncacheable) {
  Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  PlanCacheKey key;

  ParallelizeOptions filtered = FinalizedOptions();
  filtered.inter.profiler.intra.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                                            const ParallelAlgorithm&) { return true; };
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, filtered, &key));

  ParallelizeOptions forced = FinalizedOptions();
  forced.inter.profiler.intra.forced_choice = {0, 0, 0};
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, forced, &key));

  ParallelizeOptions seeded = FinalizedOptions();
  seeded.inter.profiler.intra.solver.seeds = {{0, 0}};
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, seeded, &key));
}

// The regression this PR's bugfix satellite exists for: before the
// profile-source fingerprint joined the key, a recompile under measured
// timings would LOOK UP (and hit) the plan compiled from analytical
// costs — returning a stale plan instead of recompiling.
TEST_F(PlanCacheTest, MeasuredProfileRecompileMissesAnalyticalEntry) {
  Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const ParallelizeOptions analytical = FinalizedOptions();
  PlanCacheKey analytical_key;
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, analytical, &analytical_key));

  MeasuredProfileSource source;
  source.AddMeasurement(0, 1, SubmeshShape{1, 2}, 0.012, 0.010);
  source.Finalize();
  ASSERT_NE(source.Fingerprint(), 0u);

  ParallelizeOptions measured = FinalizedOptions();
  measured.inter.profile_source = &source;
  PlanCacheKey measured_key;
  // Still cacheable (the fingerprint is stable)...
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, measured, &measured_key));
  // ...but under a different key than the analytical compile.
  EXPECT_NE(analytical_key, measured_key);
  EXPECT_EQ(analytical_key.graph_hash, measured_key.graph_hash);

  // Different measurements → different key (the fingerprint hashes the
  // measurement contents, not just presence).
  MeasuredProfileSource other_source;
  other_source.AddMeasurement(0, 1, SubmeshShape{1, 2}, 0.020, 0.010);
  other_source.Finalize();
  ParallelizeOptions other = FinalizedOptions();
  other.inter.profile_source = &other_source;
  PlanCacheKey other_key;
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, other, &other_key));
  EXPECT_NE(measured_key, other_key);

  // End-to-end: the analytical plan is cached, then the measured-profile
  // request must compile fresh (miss), not alias the cached entry.
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = cluster;
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_TRUE(service.last_outcome().plan_cache_hit);  // Warm now.
  request.options.profile_source = &source;
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);  // Regression: must miss.
}

TEST_F(PlanCacheTest, UnfingerprintedProfileSourceIsUncacheable) {
  class OpaqueSource : public ProfileSource {
   public:
    void Apply(int, int, const SubmeshShape&, StageProfile*) const override {}
    // Inherits Fingerprint() == 0.
  };
  OpaqueSource source;
  Graph graph = BuildMlp(MlpConfig{});
  ParallelizeOptions options = FinalizedOptions();
  options.inter.profile_source = &source;
  PlanCacheKey key;
  EXPECT_FALSE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), options, &key));
}

TEST_F(PlanCacheTest, DiskEntriesSurviveMemoryClear) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  const StatusOr<ParallelPlan> cold = service.Parallelize(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);

  // Simulated restart: memory gone, disk intact.
  PlanCache::Global().Clear(/*also_disk=*/false);
  const StatusOr<ParallelPlan> warm = service.Parallelize(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(service.last_outcome().plan_cache_hit);
  EXPECT_EQ(PlanCache::Global().stats().disk_hits, 1);
  // The disk round-trip is bit-exact.
  EXPECT_TRUE(PlanEquals(cold->pipeline, warm->pipeline));
}

TEST_F(PlanCacheTest, CorruptDiskEntryIsAMiss) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  ASSERT_TRUE(service.Parallelize(request).ok());

  // Flip a byte in every persisted entry, then restart.
  int corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir_)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(data.size(), 100u);
    data[data.size() / 2] ^= 0x5a;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);
  PlanCache::Global().Clear(/*also_disk=*/false);
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);  // Miss, not garbage.
  EXPECT_EQ(PlanCache::Global().stats().disk_hits, 0);
}

// The tentpole's dedup contract: a 32-thread cold storm on ONE key runs
// the compiler exactly once (the single-flight leader); every thread gets
// a bit-identical plan. Before single-flight, all 32 threads would miss
// and compile concurrently.
TEST_F(PlanCacheTest, ConcurrentColdStormCompilesOnce) {
  constexpr int kThreads = 32;
  Metric* compiles = Metrics::Get("serve/compiles");
  const int64_t compiles_before = compiles->value();

  std::vector<StatusOr<ParallelPlan>> plans(kThreads, Status::Internal("unset"));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &plans, &ready, &go] {
      // Services are per-thread (last_outcome is not thread-safe); the
      // cache and the flight table are process-wide.
      InProcessPlanService service;
      PlanRequest request;
      request.graph = BuildMlp(MlpConfig{});
      request.cluster = ClusterSpec::AwsP3(1, 2);
      request.options.num_microbatches = 4;
      request.options.target_layers = 2;
      ready.fetch_add(1);
      while (!go.load()) {
        std::this_thread::yield();
      }
      plans[i] = service.Parallelize(request);
    });
  }
  while (ready.load() < kThreads) {
    std::this_thread::yield();
  }
  go.store(true);
  for (std::thread& thread : threads) {
    thread.join();
  }

  // Exactly one compile across the storm.
  EXPECT_EQ(compiles->value() - compiles_before, 1);
  const PlanCacheStats stats = PlanCache::Global().stats();
  EXPECT_EQ(stats.flight_leaders, 1);
  // Every non-leader either joined the flight or arrived after the
  // publish and hit memory.
  EXPECT_EQ(stats.flight_followers + stats.memory_hits, kThreads - 1);

  ASSERT_TRUE(plans[0].ok()) << plans[0].status().ToString();
  for (int i = 1; i < kThreads; ++i) {
    ASSERT_TRUE(plans[i].ok()) << plans[i].status().ToString();
    EXPECT_TRUE(PlanEquals(plans[0]->pipeline, plans[i]->pipeline)) << "thread " << i;
  }
}

// A leader that fails must propagate its error to every follower (and
// leave no flight behind so a retry can compile).
TEST_F(PlanCacheTest, FailedLeaderPropagatesToFollowers) {
  const PlanCacheKey key{42, 43};
  ParallelPlan plan;
  Status status = Status::Ok();
  ASSERT_EQ(PlanCache::Global().JoinFlight(key, &plan, &status), FlightOutcome::kLeader);

  std::thread follower([&key] {
    ParallelPlan follower_plan;
    Status follower_status = Status::Ok();
    const FlightOutcome outcome =
        PlanCache::Global().JoinFlight(key, &follower_plan, &follower_status);
    EXPECT_EQ(outcome, FlightOutcome::kFailed);
    EXPECT_EQ(follower_status.code(), StatusCode::kInfeasible);
  });
  // Give the follower a chance to actually block on the flight.
  while (PlanCache::Global().stats().flight_followers == 0) {
    std::this_thread::yield();
  }
  PlanCache::Global().FinishFlight(key, Status::Infeasible("no plan"));
  follower.join();

  // The failed flight is gone: the next JoinFlight elects a new leader.
  ASSERT_EQ(PlanCache::Global().JoinFlight(key, &plan, &status), FlightOutcome::kLeader);
  PlanCache::Global().FinishFlight(key, Status::Infeasible("no plan"));
}

// A follower with a short deadline must not inherit the leader's compile
// time: it fails fast with kDeadlineExceeded, while the flight stays
// intact for patient followers and the leader's eventual publish.
TEST_F(PlanCacheTest, FollowerDeadlineExpiresWithoutKillingTheFlight) {
  const PlanCacheKey key{77, 78};
  ParallelPlan plan;
  Status status = Status::Ok();
  ASSERT_EQ(PlanCache::Global().JoinFlight(key, &plan, &status), FlightOutcome::kLeader);

  // Deadline-carrying follower: the leader never publishes before it
  // expires, so it must return on its own.
  ParallelPlan follower_plan;
  Status follower_status = Status::Ok();
  const FlightOutcome expired = PlanCache::Global().JoinFlight(
      key, &follower_plan, &follower_status, /*deadline_seconds=*/0.01);
  EXPECT_EQ(expired, FlightOutcome::kFailed);
  EXPECT_EQ(follower_status.code(), StatusCode::kDeadlineExceeded);

  // The flight survived the expiry: a patient follower still rides it to
  // the leader's result instead of electing a duplicate leader.
  const int64_t followers_before = PlanCache::Global().stats().flight_followers;
  std::thread patient([&key] {
    ParallelPlan patient_plan;
    Status patient_status = Status::Ok();
    const FlightOutcome outcome = PlanCache::Global().JoinFlight(
        key, &patient_plan, &patient_status, /*deadline_seconds=*/0.0);
    EXPECT_EQ(outcome, FlightOutcome::kFailed);
    EXPECT_EQ(patient_status.code(), StatusCode::kInfeasible);
  });
  while (PlanCache::Global().stats().flight_followers <= followers_before) {
    std::this_thread::yield();
  }
  PlanCache::Global().FinishFlight(key, Status::Infeasible("no plan"));
  patient.join();
}

// Entry-count cap: inserting past the cap evicts the least-recently-used
// entry — file, index, and memory promotion together.
TEST_F(PlanCacheTest, EvictionDropsOldestFirst) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  PlanCache::Global().SetLimits(PlanCacheLimits{/*max_disk_entries=*/2, 0});
  const PlanCacheKey k1{1, 1};
  const PlanCacheKey k2{2, 2};
  const PlanCacheKey k3{3, 3};
  ParallelPlan plan;
  PlanCache::Global().Insert(k1, plan);
  PlanCache::Global().Insert(k2, plan);
  EXPECT_EQ(PlanCache::Global().disk_size(), 2u);

  // Touch k1 so k2 becomes the LRU victim.
  ParallelPlan out;
  ASSERT_TRUE(PlanCache::Global().Lookup(k1, &out));
  PlanCache::Global().Insert(k3, plan);

  EXPECT_EQ(PlanCache::Global().disk_size(), 2u);
  EXPECT_EQ(PlanCache::Global().stats().evictions, 1);
  EXPECT_FALSE(PlanCache::Global().Lookup(k2, &out));  // Evicted, memory too.
  EXPECT_TRUE(PlanCache::Global().Lookup(k1, &out));
  EXPECT_TRUE(PlanCache::Global().Lookup(k3, &out));
  // Exactly 2 files on disk.
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir_)) {
    files += entry.path().extension() == ".plan" ? 1 : 0;
  }
  EXPECT_EQ(files, 2);
}

// Byte cap: the store stays under max_disk_bytes no matter how many
// entries are inserted, and the accounting matches the files.
TEST_F(PlanCacheTest, ByteCapBoundsTheStore) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  ParallelPlan plan;
  PlanCache::Global().Insert(PlanCacheKey{0, 0}, plan);
  const int64_t entry_bytes = PlanCache::Global().disk_bytes();
  ASSERT_GT(entry_bytes, 0);
  PlanCache::Global().Clear(/*also_disk=*/true);

  const int64_t cap = 3 * entry_bytes + entry_bytes / 2;  // Room for 3.
  PlanCache::Global().SetLimits(PlanCacheLimits{0, cap});
  for (uint64_t i = 1; i <= 10; ++i) {
    PlanCache::Global().Insert(PlanCacheKey{i, i}, plan);
    EXPECT_LE(PlanCache::Global().disk_bytes(), cap);
  }
  EXPECT_EQ(PlanCache::Global().disk_size(), 3u);
  EXPECT_EQ(PlanCache::Global().stats().evictions, 7);
}

// Limits are enforced on the index rebuilt by SetDiskDir too (a restart
// under tighter caps trims the store immediately).
TEST_F(PlanCacheTest, LimitsApplyOnReopen) {
  const std::string dir = TempDir();
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(dir).ok());
  ParallelPlan plan;
  for (uint64_t i = 1; i <= 5; ++i) {
    PlanCache::Global().Insert(PlanCacheKey{i, i}, plan);
  }
  EXPECT_EQ(PlanCache::Global().disk_size(), 5u);

  PlanCache::Global().Clear(/*also_disk=*/false);
  PlanCache::Global().SetLimits(PlanCacheLimits{/*max_disk_entries=*/2, 0});
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(dir).ok());
  EXPECT_EQ(PlanCache::Global().disk_size(), 2u);
}

// The metric-consistency bugfix satellite: a corrupt entry unlinked on
// read must leave the exported gauges agreeing with the store, and Clear
// must zero them (before, plan_cache/entries refreshed only on write).
TEST_F(PlanCacheTest, MetricsStayConsistentOnCorruptMissAndClear) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  ParallelPlan plan;
  PlanCache::Global().Insert(PlanCacheKey{7, 7}, plan);
  EXPECT_EQ(Metrics::Get("plan_cache/disk_entries")->value(), 1);

  // Corrupt the entry on disk, drop the memory copy, then miss on it.
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir_)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    data[data.size() / 2] ^= 0x5a;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  PlanCache::Global().Clear(/*also_disk=*/false);
  ParallelPlan out;
  EXPECT_FALSE(PlanCache::Global().Lookup(PlanCacheKey{7, 7}, &out));
  // The unlink kept index, bytes, and gauges in sync.
  EXPECT_EQ(PlanCache::Global().disk_size(), 0u);
  EXPECT_EQ(PlanCache::Global().disk_bytes(), 0);
  EXPECT_EQ(Metrics::Get("plan_cache/disk_entries")->value(), 0);
  EXPECT_EQ(Metrics::Get("plan_cache/disk_bytes")->value(), 0);

  PlanCache::Global().Insert(PlanCacheKey{8, 8}, plan);
  EXPECT_EQ(Metrics::Get("plan_cache/entries")->value(), 1);
  PlanCache::Global().Clear(/*also_disk=*/true);
  EXPECT_EQ(Metrics::Get("plan_cache/entries")->value(), 0);
  EXPECT_EQ(Metrics::Get("plan_cache/disk_entries")->value(), 0);
}

// A wire-version bump must invalidate persisted entries eagerly: the
// SetDiskDir sweep unlinks files whose envelope carries another version.
TEST_F(PlanCacheTest, VersionSweepRemovesStaleEntries) {
  const std::string dir = TempDir();
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(dir).ok());
  ParallelPlan plan;
  PlanCache::Global().Insert(PlanCacheKey{1, 1}, plan);
  PlanCache::Global().Insert(PlanCacheKey{2, 2}, plan);

  // Rewrite one entry's version field (byte 4..5 of the envelope).
  bool patched = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    data[4] = static_cast<char>(data[4] + 1);
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    patched = true;
    break;
  }
  ASSERT_TRUE(patched);

  PlanCache::Global().Clear(/*also_disk=*/false);
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(dir).ok());  // Reopen sweeps.
  EXPECT_EQ(PlanCache::Global().disk_size(), 1u);
  EXPECT_EQ(PlanCache::Global().stats().version_swept, 1);
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files += entry.path().extension() == ".plan" ? 1 : 0;
  }
  EXPECT_EQ(files, 1);
}

}  // namespace
}  // namespace serve
}  // namespace alpa
