// Plan-cache tests: key coverage (graph names/layers, cluster extent,
// options, profile-source fingerprint), eligibility rules, the
// memory+disk lookup path with restart survival, and the PR-6 regression
// this PR fixes — a measured-profile recompile must MISS the
// analytical-cost entry instead of aliasing it.
#include "src/serve/plan_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/core/api.h"
#include "src/inter/profile_feedback.h"
#include "src/models/mlp.h"
#include "src/serve/service.h"

namespace alpa {
namespace serve {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
  }
  void TearDown() override {
    PlanCache::Global().Clear(/*also_disk=*/true);
    ASSERT_TRUE(PlanCache::Global().SetDiskDir("").ok());
    if (!temp_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(temp_dir_, ec);
    }
  }

  std::string TempDir() {
    temp_dir_ = (std::filesystem::temp_directory_path() /
                 ("alpa_plan_cache_test_" +
                  std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
                  ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                    .string();
    return temp_dir_;
  }

  std::string temp_dir_;
};

ParallelizeOptions FinalizedOptions() {
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 2;
  EXPECT_TRUE(options.Finalize().ok());
  return options;
}

TEST_F(PlanCacheTest, KeyCoversGraphNamesAndLayers) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const ParallelizeOptions options = FinalizedOptions();
  Graph a = BuildMlp(MlpConfig{});
  Graph b = BuildMlp(MlpConfig{});
  PlanCacheKey key_a;
  PlanCacheKey key_b;
  ASSERT_TRUE(ComputePlanCacheKey(a, cluster, options, &key_a));
  ASSERT_TRUE(ComputePlanCacheKey(b, cluster, options, &key_b));
  EXPECT_EQ(key_a, key_b);  // Deterministic.

  // Unlike StructuralHash, the plan key sees names and layer tags: the
  // clustering pass reads both, so plans for the graphs can differ.
  Graph renamed = BuildMlp(MlpConfig{});
  const_cast<Operator&>(renamed.ops()[1]).layer += 1;
  PlanCacheKey key_renamed;
  ASSERT_TRUE(ComputePlanCacheKey(renamed, cluster, options, &key_renamed));
  EXPECT_NE(key_a.graph_hash, key_renamed.graph_hash);
}

TEST_F(PlanCacheTest, KeyCoversClusterExtentAndOptions) {
  Graph graph = BuildMlp(MlpConfig{});
  const ParallelizeOptions options = FinalizedOptions();
  PlanCacheKey on2;
  PlanCacheKey on4;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), options, &on2));
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 4), options, &on4));
  // The ILP memo deliberately ignores cluster extent; the plan cache must
  // not — a whole-plan result depends on the device count.
  EXPECT_NE(on2.config_hash, on4.config_hash);

  ParallelizeOptions other = FinalizedOptions();
  other.inter.num_microbatches = 8;
  PlanCacheKey key_other;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), other, &key_other));
  EXPECT_NE(on2.config_hash, key_other.config_hash);

  // Thread count is plan-invariant by the determinism guarantee, so it
  // must NOT split the cache.
  ParallelizeOptions threaded = FinalizedOptions();
  threaded.inter.compile_threads = 4;
  PlanCacheKey key_threaded;
  ASSERT_TRUE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), threaded, &key_threaded));
  EXPECT_EQ(on2, key_threaded);
}

TEST_F(PlanCacheTest, ClosuresAreUncacheable) {
  Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  PlanCacheKey key;

  ParallelizeOptions filtered = FinalizedOptions();
  filtered.inter.profiler.intra.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                                            const ParallelAlgorithm&) { return true; };
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, filtered, &key));

  ParallelizeOptions forced = FinalizedOptions();
  forced.inter.profiler.intra.forced_choice = {0, 0, 0};
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, forced, &key));

  ParallelizeOptions seeded = FinalizedOptions();
  seeded.inter.profiler.intra.solver.seeds = {{0, 0}};
  EXPECT_FALSE(ComputePlanCacheKey(graph, cluster, seeded, &key));
}

// The regression this PR's bugfix satellite exists for: before the
// profile-source fingerprint joined the key, a recompile under measured
// timings would LOOK UP (and hit) the plan compiled from analytical
// costs — returning a stale plan instead of recompiling.
TEST_F(PlanCacheTest, MeasuredProfileRecompileMissesAnalyticalEntry) {
  Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const ParallelizeOptions analytical = FinalizedOptions();
  PlanCacheKey analytical_key;
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, analytical, &analytical_key));

  MeasuredProfileSource source;
  source.AddMeasurement(0, 1, SubmeshShape{1, 2}, 0.012, 0.010);
  source.Finalize();
  ASSERT_NE(source.Fingerprint(), 0u);

  ParallelizeOptions measured = FinalizedOptions();
  measured.inter.profile_source = &source;
  PlanCacheKey measured_key;
  // Still cacheable (the fingerprint is stable)...
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, measured, &measured_key));
  // ...but under a different key than the analytical compile.
  EXPECT_NE(analytical_key, measured_key);
  EXPECT_EQ(analytical_key.graph_hash, measured_key.graph_hash);

  // Different measurements → different key (the fingerprint hashes the
  // measurement contents, not just presence).
  MeasuredProfileSource other_source;
  other_source.AddMeasurement(0, 1, SubmeshShape{1, 2}, 0.020, 0.010);
  other_source.Finalize();
  ParallelizeOptions other = FinalizedOptions();
  other.inter.profile_source = &other_source;
  PlanCacheKey other_key;
  ASSERT_TRUE(ComputePlanCacheKey(graph, cluster, other, &other_key));
  EXPECT_NE(measured_key, other_key);

  // End-to-end: the analytical plan is cached, then the measured-profile
  // request must compile fresh (miss), not alias the cached entry.
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = cluster;
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_TRUE(service.last_outcome().plan_cache_hit);  // Warm now.
  request.options.profile_source = &source;
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);  // Regression: must miss.
}

TEST_F(PlanCacheTest, UnfingerprintedProfileSourceIsUncacheable) {
  class OpaqueSource : public ProfileSource {
   public:
    void Apply(int, int, const SubmeshShape&, StageProfile*) const override {}
    // Inherits Fingerprint() == 0.
  };
  OpaqueSource source;
  Graph graph = BuildMlp(MlpConfig{});
  ParallelizeOptions options = FinalizedOptions();
  options.inter.profile_source = &source;
  PlanCacheKey key;
  EXPECT_FALSE(ComputePlanCacheKey(graph, ClusterSpec::AwsP3(1, 2), options, &key));
}

TEST_F(PlanCacheTest, DiskEntriesSurviveMemoryClear) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  const StatusOr<ParallelPlan> cold = service.Parallelize(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);

  // Simulated restart: memory gone, disk intact.
  PlanCache::Global().Clear(/*also_disk=*/false);
  const StatusOr<ParallelPlan> warm = service.Parallelize(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(service.last_outcome().plan_cache_hit);
  EXPECT_EQ(PlanCache::Global().stats().disk_hits, 1);
  // The disk round-trip is bit-exact.
  EXPECT_TRUE(PlanEquals(cold->pipeline, warm->pipeline));
}

TEST_F(PlanCacheTest, CorruptDiskEntryIsAMiss) {
  ASSERT_TRUE(PlanCache::Global().SetDiskDir(TempDir()).ok());
  InProcessPlanService service;
  PlanRequest request;
  request.graph = BuildMlp(MlpConfig{});
  request.cluster = ClusterSpec::AwsP3(1, 2);
  request.options.num_microbatches = 4;
  request.options.target_layers = 2;
  ASSERT_TRUE(service.Parallelize(request).ok());

  // Flip a byte in every persisted entry, then restart.
  int corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(temp_dir_)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(data.size(), 100u);
    data[data.size() / 2] ^= 0x5a;
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);
  PlanCache::Global().Clear(/*also_disk=*/false);
  ASSERT_TRUE(service.Parallelize(request).ok());
  EXPECT_FALSE(service.last_outcome().plan_cache_hit);  // Miss, not garbage.
  EXPECT_EQ(PlanCache::Global().stats().disk_hits, 0);
}

}  // namespace
}  // namespace serve
}  // namespace alpa
