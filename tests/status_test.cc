// Status/StatusOr semantics and the structured failure modes of the public
// API: option conflicts (kInvalidArgument), infeasible searches
// (kInfeasible), and simulated OOM (kResourceExhausted).
#include <gtest/gtest.h>

#include "src/core/api.h"
#include "src/models/gpt.h"

namespace alpa {
namespace {

GptConfig TinyGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_EQ(status, Status::Ok());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::Infeasible("no plan");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(status.message(), "no plan");
  EXPECT_EQ(status.ToString(), "INFEASIBLE: no plan");
  EXPECT_NE(status, Status::InvalidArgument("no plan"));
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> result = Status::InvalidArgument("bad");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  const std::string moved = *std::move(result);
  EXPECT_EQ(moved, "payload");
}

TEST(Finalize, MirrorConflictIsInvalidArgument) {
  ParallelizeOptions options;
  options.num_microbatches = 8;        // Mirror...
  options.inter.num_microbatches = 32; // ...and authoritative field disagree.
  const Status status = options.Finalize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_microbatches"), std::string::npos);
}

TEST(Finalize, MirrorResolvesIntoInter) {
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.compile_threads = 2;
  ASSERT_TRUE(options.Finalize().ok());
  EXPECT_EQ(options.inter.num_microbatches, 8);
  EXPECT_EQ(options.inter.compile_threads, 2);
  // Idempotent, and the resolved options stay usable as a template whose
  // inter fields are tweaked afterwards.
  options.inter.num_microbatches = 8;
  ASSERT_TRUE(options.Finalize().ok());
}

TEST(Finalize, ThreadsConflictIsInvalidArgument) {
  ParallelizeOptions options;
  options.compile_threads = 2;
  options.inter.compile_threads = 4;
  const Status status = options.Finalize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("compile_threads"), std::string::npos);
}

TEST(Finalize, RejectsOutOfRangeValues) {
  ParallelizeOptions negative_microbatches;
  negative_microbatches.num_microbatches = -3;
  EXPECT_EQ(negative_microbatches.Finalize().code(), StatusCode::kInvalidArgument);

  ParallelizeOptions zero_inter;
  zero_inter.inter.num_microbatches = 0;
  EXPECT_EQ(zero_inter.Finalize().code(), StatusCode::kInvalidArgument);

  ParallelizeOptions bad_threads;
  bad_threads.compile_threads = -7;
  EXPECT_EQ(bad_threads.Finalize().code(), StatusCode::kInvalidArgument);
}

TEST(Builder, WritesAuthoritativeFields) {
  const ParallelizeOptions options = ParallelizeOptions::Builder()
                                         .microbatches(16)
                                         .schedule(PipelineScheduleType::kGpipe)
                                         .threads(3)
                                         .target_layers(6)
                                         .trace("trace.json")
                                         .Build();
  EXPECT_EQ(options.inter.num_microbatches, 16);
  EXPECT_EQ(options.inter.compile_threads, 3);
  EXPECT_EQ(options.inter.target_layers, 6);
  EXPECT_EQ(options.schedule, PipelineScheduleType::kGpipe);
  EXPECT_EQ(options.trace_path, "trace.json");
  // A built template tweaked through inter.* must re-finalize cleanly.
  ParallelizeOptions tweaked = options;
  tweaked.inter.num_microbatches = 64;
  EXPECT_TRUE(tweaked.Finalize().ok());
  EXPECT_EQ(tweaked.inter.num_microbatches, 64);
}

TEST(Api, InvalidOptionsSurfaceBeforeCompiling) {
  Graph graph = BuildGpt(TinyGpt());
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.num_microbatches = 32;
  const StatusOr<ParallelPlan> plan = Parallelize(graph, ClusterSpec::AwsP3(1, 2), options);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST(Api, MemoryConstrainedSearchIsInfeasible) {
  // With (almost) no device memory the stage DP's memory constraint rejects
  // every stage-mesh assignment: no feasible plan exists.
  Graph graph = BuildGpt(TinyGpt());
  ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  cluster.device.memory_bytes = 1;
  ParallelizeOptions options;
  options.inter.num_microbatches = 4;
  options.inter.target_layers = 2;
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible) << plan.status().ToString();
  EXPECT_FALSE(plan.status().message().empty());
}

TEST(Api, SimulatedOomIsResourceExhausted) {
  Graph graph = BuildGpt(TinyGpt());
  ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  cluster.device.memory_bytes = 1;  // Nothing fits at execution time...
  ParallelizeOptions options;
  options.inter.num_microbatches = 4;
  options.inter.target_layers = 2;
  // ...but let the stage DP accept a plan, so the failure comes from the
  // simulator, carrying the stage and sizes in the message.
  options.inter.dp.device_memory_override = 1e15;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted) << stats.status().ToString();
  EXPECT_NE(stats.status().message().find("exceeds device memory"), std::string::npos);
  // The compiled plan is still handed out for inspection.
  EXPECT_TRUE(plan.pipeline.feasible);
}

TEST(Api, SimulateRejectsUncompiledPlan) {
  Graph graph = BuildGpt(TinyGpt());
  const ParallelPlan empty;
  const StatusOr<ExecutionStats> stats = Simulate(empty, graph, ClusterSpec::AwsP3(1, 2));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace alpa
