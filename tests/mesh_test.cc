#include <gtest/gtest.h>

#include <numeric>

#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"
#include "src/mesh/submesh.h"
#include "src/support/rng.h"

namespace alpa {
namespace {

TEST(ClusterSpec, AwsP3) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(8);
  EXPECT_EQ(cluster.num_hosts, 8);
  EXPECT_EQ(cluster.devices_per_host, 8);
  EXPECT_EQ(cluster.num_devices(), 64);
  EXPECT_GT(cluster.intra_host_bandwidth, cluster.inter_host_bandwidth);
}

TEST(ClusterSpec, Precision) {
  EXPECT_EQ(BytesPerElement(Precision::kFloat16), 2);
  EXPECT_EQ(BytesPerElement(Precision::kFloat32), 4);
  DeviceSpec device;
  EXPECT_GT(device.PeakFlops(Precision::kFloat16), device.PeakFlops(Precision::kFloat32));
  EXPECT_LT(device.EffectiveFlops(Precision::kFloat16), device.PeakFlops(Precision::kFloat16));
}

TEST(DeviceMesh, SingleHostAxesUseNvlink) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 1, 8);
  EXPECT_EQ(mesh.dim(0), 1);
  EXPECT_EQ(mesh.dim(1), 8);
  EXPECT_DOUBLE_EQ(mesh.bandwidth(0), cluster.intra_host_bandwidth);
  EXPECT_DOUBLE_EQ(mesh.bandwidth(1), cluster.intra_host_bandwidth);
}

TEST(DeviceMesh, MultiHostAxis0SharesNic) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(4);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 4, 8);
  EXPECT_DOUBLE_EQ(mesh.bandwidth(0), cluster.inter_host_bandwidth / 8);
  EXPECT_DOUBLE_EQ(mesh.bandwidth(1), cluster.intra_host_bandwidth);
}

TEST(DeviceMesh, RingAllReduceFormula) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 1, 4);
  const double bytes = 1e9;
  const double expected =
      2.0 * 3 / 4 * bytes / cluster.intra_host_bandwidth + 2.0 * 3 * cluster.intra_host_alpha;
  EXPECT_DOUBLE_EQ(mesh.AllReduceTime(bytes, 1), expected);
  // Axis 0 has a single device: all collectives free.
  EXPECT_DOUBLE_EQ(mesh.AllReduceTime(bytes, 0), 0.0);
  EXPECT_DOUBLE_EQ(mesh.AllGatherTime(bytes, 0), 0.0);
}

TEST(DeviceMesh, AllGatherCheaperThanAllReduce) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 2, 8);
  const double bytes = 64e6;
  for (int axis = 0; axis < 2; ++axis) {
    EXPECT_LT(mesh.AllGatherTime(bytes, axis), mesh.AllReduceTime(bytes, axis));
    EXPECT_DOUBLE_EQ(mesh.AllGatherTime(bytes, axis), mesh.ReduceScatterTime(bytes, axis));
  }
}

TEST(DeviceMesh, HierarchicalBothAxes) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(4);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 4, 8);
  const double bytes = 1e8;
  // Hierarchical all-reduce must beat the naive flat ring over the slow
  // axis with the full payload.
  EXPECT_LT(mesh.AllReduceBothTime(bytes),
            mesh.AllReduceTime(bytes, 0) + mesh.AllReduceTime(bytes, 1));
  EXPECT_GT(mesh.AllReduceBothTime(bytes), 0.0);
  EXPECT_GT(mesh.AllGatherBothTime(bytes), 0.0);
}

TEST(DeviceMesh, DeviceIdsRowMajor) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  const DeviceMesh mesh = DeviceMesh::CreateSimple(cluster, 2, 4);
  EXPECT_EQ(mesh.DeviceAt(0, 0), 0);
  EXPECT_EQ(mesh.DeviceAt(0, 3), 3);
  EXPECT_EQ(mesh.DeviceAt(1, 0), 4);
  EXPECT_EQ(mesh.DeviceAt(1, 3), 7);
  EXPECT_EQ(mesh.DeviceIds().size(), 8u);
}

TEST(DeviceMesh, PlacementOffsets) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(4, 8);
  MeshPlacement placement;
  placement.host_begin = 2;
  placement.device_begin = 4;
  placement.shape = SubmeshShape{1, 4};
  const DeviceMesh mesh = DeviceMesh::Create(cluster, placement, {1, 4});
  EXPECT_EQ(mesh.DeviceAt(0, 0), 2 * 8 + 4);
  EXPECT_EQ(mesh.DeviceAt(0, 3), 2 * 8 + 7);
}

TEST(DeviceMesh, LogicalShapeOptions) {
  auto single = DeviceMesh::LogicalShapeOptions(SubmeshShape{1, 8});
  // 1x8, 2x4, 4x2, 8x1.
  EXPECT_EQ(single.size(), 4u);
  auto multi = DeviceMesh::LogicalShapeOptions(SubmeshShape{4, 8});
  EXPECT_EQ(multi.size(), 3u);
}

TEST(DeviceMesh, P2P) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2);
  EXPECT_LT(P2PTime(cluster, 1e6, /*cross_host=*/false), P2PTime(cluster, 1e6, true));
}

TEST(Submesh, Enumerate) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(8);
  const std::vector<SubmeshShape> shapes = EnumerateSubmeshShapes(cluster);
  // (1,1),(1,2),(1,4),(1,8) + (2,8)..(8,8) = 4 + 7 = 11.
  EXPECT_EQ(shapes.size(), 11u);
  EXPECT_EQ(shapes.front(), (SubmeshShape{1, 1}));
  EXPECT_EQ(shapes.back(), (SubmeshShape{8, 8}));
}

TEST(Submesh, CoverSimple) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  auto placements = CoverCluster(cluster, {SubmeshShape{1, 4}, SubmeshShape{1, 2},
                                           SubmeshShape{1, 1}, SubmeshShape{1, 1}});
  ASSERT_TRUE(placements.has_value());
  // Every device covered exactly once.
  std::vector<int> covered(8, 0);
  for (size_t i = 0; i < placements->size(); ++i) {
    const DeviceMesh mesh = DeviceMesh::Create(
        cluster, (*placements)[i],
        {(*placements)[i].shape.num_hosts, (*placements)[i].shape.devices_per_host});
    for (int id : mesh.DeviceIds()) {
      covered[static_cast<size_t>(id)]++;
    }
  }
  for (int count : covered) {
    EXPECT_EQ(count, 1);
  }
}

TEST(Submesh, CoverRejectsBadInput) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 4);
  // Wrong total.
  EXPECT_FALSE(CoverCluster(cluster, {SubmeshShape{1, 4}}).has_value());
  // Non power of two 1D shape.
  EXPECT_FALSE(
      CoverCluster(cluster, {SubmeshShape{1, 3}, SubmeshShape{1, 4}, SubmeshShape{1, 1}})
          .has_value());
  // Multi-host shape not spanning full hosts.
  EXPECT_FALSE(CoverCluster(cluster, {SubmeshShape{2, 2}, SubmeshShape{1, 4}}).has_value());
}

// Property test of Theorem 1: any random multiset of valid submesh shapes
// whose sizes sum to N*M can be placed.
TEST(Submesh, CoverPropertyRandom) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int hosts = 1 + static_cast<int>(rng.NextBounded(8));
    const int dph = 1 << rng.NextBounded(4);  // 1..8
    const ClusterSpec cluster = ClusterSpec::AwsP3(hosts, dph);
    int remaining = cluster.num_devices();
    std::vector<SubmeshShape> shapes;
    while (remaining > 0) {
      // Randomly pick a valid shape that still fits.
      if (remaining >= 2 * dph && rng.NextBounded(2) == 0) {
        const int h = 2 + static_cast<int>(rng.NextBounded(
                              static_cast<uint64_t>(remaining / dph - 1)));
        shapes.push_back(SubmeshShape{h, dph});
        remaining -= h * dph;
      } else {
        int d = 1 << rng.NextBounded(4);
        while (d > dph || d > remaining) {
          d /= 2;
        }
        shapes.push_back(SubmeshShape{1, d});
        remaining -= d;
      }
    }
    auto placements = CoverCluster(cluster, shapes);
    ASSERT_TRUE(placements.has_value()) << "trial " << trial;
    std::vector<int> covered(static_cast<size_t>(cluster.num_devices()), 0);
    for (size_t i = 0; i < placements->size(); ++i) {
      const DeviceMesh mesh = DeviceMesh::Create(
          cluster, (*placements)[i],
          {(*placements)[i].shape.num_hosts, (*placements)[i].shape.devices_per_host});
      for (int id : mesh.DeviceIds()) {
        covered[static_cast<size_t>(id)]++;
      }
    }
    for (int count : covered) {
      EXPECT_EQ(count, 1) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace alpa
