#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/solver/flat_bnb.h"
#include "src/solver/ilp_solver.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

// Exhaustive brute force for small problems.
double BruteForce(const IlpProblem& problem, std::vector<int>* best_choice = nullptr) {
  std::vector<int> choice(static_cast<size_t>(problem.num_nodes()), 0);
  double best = kInfCost;
  while (true) {
    const double value = problem.Evaluate(choice);
    if (value < best) {
      best = value;
      if (best_choice != nullptr) {
        *best_choice = choice;
      }
    }
    int i = 0;
    while (i < problem.num_nodes()) {
      if (++choice[static_cast<size_t>(i)] < problem.num_choices(i)) {
        break;
      }
      choice[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == problem.num_nodes()) {
      break;
    }
  }
  return best;
}

IlpProblem RandomProblem(Rng& rng, int nodes, int max_choices, double edge_prob,
                         bool allow_inf = false) {
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_choices)));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[static_cast<size_t>(v)].push_back(rng.NextDouble(0, 10));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() > edge_prob) {
        continue;
      }
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          double c = rng.NextDouble(0, 5);
          if (allow_inf && rng.NextDouble() < 0.1) {
            c = kInfCost;
          }
          row.push_back(c);
        }
      }
      problem.edges.push_back(std::move(edge));
    }
  }
  return problem;
}

TEST(IlpSolver, EmptyProblem) {
  IlpProblem problem;
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_TRUE(solution.optimal);
  EXPECT_DOUBLE_EQ(solution.objective, 0.0);
}

TEST(IlpSolver, SingleNode) {
  IlpProblem problem;
  problem.node_costs = {{3.0, 1.0, 2.0}};
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_TRUE(solution.optimal);
  EXPECT_EQ(solution.choice[0], 1);
  EXPECT_DOUBLE_EQ(solution.objective, 1.0);
}

TEST(IlpSolver, ChainUsesForestDp) {
  IlpProblem problem;
  problem.node_costs = {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  for (int v = 0; v + 1 < 3; ++v) {
    IlpProblem::Edge edge;
    edge.u = v;
    edge.v = v + 1;
    // Strongly prefers matching choices.
    edge.cost = {{0.0, 10.0}, {10.0, 0.0}};
    problem.edges.push_back(edge);
  }
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_EQ(solution.method, "dp-forest");
  EXPECT_TRUE(solution.optimal);
  EXPECT_DOUBLE_EQ(solution.objective, 0.0);
  EXPECT_EQ(solution.choice[0], solution.choice[1]);
  EXPECT_EQ(solution.choice[1], solution.choice[2]);
}

TEST(IlpSolver, CycleFoldsAwayInPresolve) {
  IlpProblem problem;
  problem.node_costs = {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}};
  // Triangle with anti-ferromagnetic couplings (frustrated). Series
  // reduction collapses any cycle, so this solves without search.
  for (int u = 0; u < 3; ++u) {
    for (int v = u + 1; v < 3; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
      problem.edges.push_back(edge);
    }
  }
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_EQ(solution.method, "dp-forest");
  EXPECT_TRUE(solution.optimal);
  EXPECT_DOUBLE_EQ(solution.objective, BruteForce(problem));
}

IlpProblem FrustratedClique(int n) {
  IlpProblem problem;
  problem.node_costs.assign(static_cast<size_t>(n), {0.0, 1.0});
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
      problem.edges.push_back(edge);
    }
  }
  return problem;
}

TEST(IlpSolver, CliqueUsesBranchAndBound) {
  // K4 has treewidth 3: degree-2 series reduction cannot touch it, so with
  // elimination disabled the residual core reaches branch & bound.
  const IlpProblem problem = FrustratedClique(4);
  IlpSolverOptions options;
  options.engine = IlpEngine::kStaged;  // Pin: the default engine reports "portfolio".
  options.max_elimination_table = 0;
  const IlpSolution solution = IlpSolver(options).Solve(problem);
  EXPECT_EQ(solution.method, "branch-and-bound");
  EXPECT_TRUE(solution.optimal);
  EXPECT_DOUBLE_EQ(solution.objective, BruteForce(problem));
}

TEST(IlpSolver, CliqueUsesEliminationByDefault) {
  // Same residual K4 core, default options: treewidth 3 is well under the
  // elimination cap, so the core is solved by variable elimination.
  const IlpProblem problem = FrustratedClique(4);
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_EQ(solution.method, "elimination");
  EXPECT_TRUE(solution.optimal);
  EXPECT_DOUBLE_EQ(solution.objective, BruteForce(problem));
}

TEST(IlpSolver, InfeasibleEdges) {
  IlpProblem problem;
  problem.node_costs = {{0.0}, {0.0}, {0.0}};
  for (int u = 0; u < 3; ++u) {
    for (int v = u + 1; v < 3; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost = {{kInfCost}};
      problem.edges.push_back(edge);
    }
  }
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_FALSE(solution.feasible);
}

TEST(IlpSolver, ParallelEdgesAreSummed) {
  IlpProblem problem;
  problem.node_costs = {{0.0, 0.0}, {0.0, 0.0}};
  IlpProblem::Edge e1{0, 1, {{1.0, 0.0}, {0.0, 1.0}}};
  IlpProblem::Edge e2{1, 0, {{0.0, 3.0}, {3.0, 0.0}}};  // Reversed orientation.
  problem.edges = {e1, e2};
  const IlpSolution solution = IlpSolver().Solve(problem);
  // Diagonal costs 1+0 / mixed 0+3: best is matching (cost 1).
  EXPECT_DOUBLE_EQ(solution.objective, 1.0);
  EXPECT_DOUBLE_EQ(solution.objective, BruteForce(problem));
}

TEST(IlpSolver, MatchesBruteForceOnRandomTrees) {
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(6));
    IlpProblem problem = RandomProblem(rng, nodes, 4, 0.0);
    // Build a random spanning tree.
    for (int v = 1; v < nodes; ++v) {
      IlpProblem::Edge edge;
      edge.u = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(v)));
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(edge.u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          row.push_back(rng.NextDouble(0, 5));
        }
      }
      problem.edges.push_back(std::move(edge));
    }
    const IlpSolution solution = IlpSolver().Solve(problem);
    EXPECT_EQ(solution.method, "dp-forest") << trial;
    EXPECT_NEAR(solution.objective, BruteForce(problem), 1e-9) << "trial " << trial;
  }
}

TEST(IlpSolver, MatchesBruteForceOnRandomGraphs) {
  Rng rng(42);
  for (int trial = 0; trial < 80; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(7));
    const IlpProblem problem = RandomProblem(rng, nodes, 4, 0.5);
    const IlpSolution solution = IlpSolver().Solve(problem);
    ASSERT_TRUE(solution.feasible) << trial;
    EXPECT_TRUE(solution.optimal) << trial;
    EXPECT_NEAR(solution.objective, BruteForce(problem), 1e-9) << "trial " << trial;
  }
}

TEST(IlpSolver, MatchesBruteForceWithInfeasibleEntries) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(6));
    const IlpProblem problem = RandomProblem(rng, nodes, 3, 0.6, /*allow_inf=*/true);
    const IlpSolution solution = IlpSolver().Solve(problem);
    const double brute = BruteForce(problem);
    if (std::isinf(brute)) {
      EXPECT_FALSE(solution.feasible) << trial;
    } else {
      ASSERT_TRUE(solution.feasible) << trial;
      EXPECT_NEAR(solution.objective, brute, 1e-9) << "trial " << trial;
    }
  }
}

TEST(IlpSolver, BudgetFallbackStaysFeasible) {
  Rng rng(5);
  IlpSolverOptions options;
  options.max_search_nodes = 20;   // Force the fallback path.
  options.max_elimination_table = 0;  // Keep the core on branch & bound.
  // Dense enough that a treewidth >= 3 core survives series reduction.
  const IlpProblem problem = RandomProblem(rng, 12, 4, 0.9);
  const IlpSolution solution = IlpSolver(options).Solve(problem);
  ASSERT_TRUE(solution.feasible);
  EXPECT_FALSE(solution.optimal);
  // Not necessarily optimal, but must be a valid assignment.
  EXPECT_NEAR(solution.objective, problem.Evaluate(solution.choice), 1e-12);
}

TEST(IlpSolver, LargeChainIsFast) {
  // 2000-node chain solved exactly by the forest DP.
  Rng rng(3);
  IlpProblem problem = RandomProblem(rng, 2000, 8, 0.0);
  for (int v = 0; v + 1 < 2000; ++v) {
    IlpProblem::Edge edge;
    edge.u = v;
    edge.v = v + 1;
    edge.cost.resize(problem.node_costs[static_cast<size_t>(v)].size());
    for (auto& row : edge.cost) {
      for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v + 1)].size(); ++j) {
        row.push_back(rng.NextDouble(0, 5));
      }
    }
    problem.edges.push_back(std::move(edge));
  }
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_TRUE(solution.optimal);
  EXPECT_EQ(solution.method, "dp-forest");
}

// The budget-redistribution bugfix: slices left unused by early-finishing
// root branches must flow to still-running ones. This instance (found by
// sweeping seeds against the pre-fix even-split code) completes within a
// budget equal to its total search need — but under even splitting, the
// hardest root branch's share is too small and the search aborted despite
// more than half the budget going unused.
TEST(FlatBnb, LeftoverBudgetIsRedistributedAcrossRootBranches) {
  Rng rng(45);
  const IlpProblem problem = RandomProblem(rng, 14, 5, 0.8);

  FlatSearchOptions unbounded;
  unbounded.budget = 100'000'000;
  const FlatSearchResult full = SolveCore(problem, unbounded);
  ASSERT_FALSE(full.aborted);
  ASSERT_GT(full.explored, 1000);  // Non-trivial search.

  // Exactly the nodes the full search needs, no slack: even splitting
  // aborted here; redistribution must not.
  FlatSearchOptions tight;
  tight.budget = full.explored;
  const FlatSearchResult redistributed = SolveCore(problem, tight);
  EXPECT_FALSE(redistributed.aborted);
  EXPECT_EQ(redistributed.objective, full.objective);
  EXPECT_EQ(redistributed.choice, full.choice);

  // Redistribution rounds are barriers with deterministic reduces: the
  // result is bit-identical with a pool.
  ThreadPool pool(4);
  FlatSearchOptions pooled = tight;
  pooled.pool = &pool;
  const FlatSearchResult parallel = SolveCore(problem, pooled);
  EXPECT_EQ(parallel.aborted, redistributed.aborted);
  EXPECT_EQ(parallel.objective, redistributed.objective);
  EXPECT_EQ(parallel.choice, redistributed.choice);
}

// The anytime contract at the flat level: an aborted search still reports
// a feasible incumbent plus a valid lower bound on the optimum.
TEST(FlatBnb, AbortReportsIncumbentAndLowerBound) {
  Rng rng(45);
  const IlpProblem problem = RandomProblem(rng, 14, 5, 0.8);
  FlatSearchOptions unbounded;
  unbounded.budget = 100'000'000;
  const FlatSearchResult full = SolveCore(problem, unbounded);

  FlatSearchOptions starved;
  starved.budget = full.explored / 4;
  const FlatSearchResult anytime = SolveCore(problem, starved);
  ASSERT_TRUE(anytime.aborted);
  ASSERT_TRUE(anytime.feasible);
  // The bound brackets the (known) optimum from below, the incumbent from
  // above, and the gap is real.
  EXPECT_LE(anytime.lower_bound, full.objective);
  EXPECT_GE(anytime.objective, full.objective);
  EXPECT_LT(anytime.lower_bound, anytime.objective);

  // A completed search closes the gap exactly.
  EXPECT_EQ(full.lower_bound, full.objective);
}

// Redistribution-rerun invariant: the reported objective must be the cost
// the stored choice actually achieves. Before the fix, a rerun that
// improved nothing stamped the cross-branch incumbent onto its stale
// round-1 choice, and the first-wins reduce could then return an
// assignment whose true cost is above the reported objective.
TEST(FlatBnb, ObjectiveMatchesChoiceUnderBudgetRedistribution) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    const IlpProblem problem = RandomProblem(rng, 14, 5, 0.8);
    FlatSearchOptions unbounded;
    unbounded.budget = 100'000'000;
    const FlatSearchResult full = SolveCore(problem, unbounded);
    ASSERT_TRUE(full.feasible) << "seed " << seed;
    // Budgets below the full search need force redistribution rounds in
    // which some branches rerun under a tighter cross-branch incumbent.
    for (const int denom : {2, 3, 4, 6, 8}) {
      FlatSearchOptions starved;
      starved.budget = full.explored / denom;
      const FlatSearchResult result = SolveCore(problem, starved);
      ASSERT_TRUE(result.feasible) << "seed " << seed << " denom " << denom;
      EXPECT_NEAR(result.objective, problem.Evaluate(result.choice), 1e-9)
          << "seed " << seed << " denom " << denom;
      EXPECT_LE(result.lower_bound, result.objective + 1e-9);
      EXPECT_GE(result.objective, full.objective - 1e-9);
    }
  }
}

// The anytime contract through IlpSolver: a budget-starved staged solve
// returns feasible + !optimal with lower_bound <= optimum <= objective
// and a positive relative gap.
TEST(IlpSolver, AnytimeLowerBoundOnAbort) {
  // Seed picked so the three-node budget genuinely aborts: the diffusion
  // bound built into the flat core proves many random instances outright.
  Rng rng(2);
  const IlpProblem problem = RandomProblem(rng, 10, 3, 0.9);
  const double brute = BruteForce(problem);

  IlpSolverOptions options;
  options.max_search_nodes = 3;  // Tighter than any proof tree for this core.
  options.max_elimination_table = 0;  // Keep the core on branch & bound.
  options.use_core_memo = false;
  const IlpSolution solution = IlpSolver(options).Solve(problem);
  ASSERT_TRUE(solution.feasible);
  ASSERT_FALSE(solution.optimal);
  EXPECT_LE(solution.lower_bound, brute + 1e-9);
  EXPECT_GE(solution.objective, brute - 1e-9);
  EXPECT_LE(solution.lower_bound, solution.objective);
  EXPECT_GT(solution.optimality_gap(), 0.0);

  // An optimal solve has no gap.
  IlpSolverOptions exact;
  exact.max_elimination_table = 0;
  exact.use_core_memo = false;
  const IlpSolution optimal = IlpSolver(exact).Solve(problem);
  ASSERT_TRUE(optimal.optimal);
  EXPECT_NEAR(optimal.lower_bound, optimal.objective, 1e-12);
  EXPECT_EQ(optimal.optimality_gap(), 0.0);
}

// The relative gap is only meaningful for positive objectives: zero-cost
// plateaus and reward-shifted instances must report 0, never divide.
TEST(IlpSolution, OptimalityGapGuardsZeroAndNegativeObjectives) {
  IlpSolution aborted;
  aborted.feasible = true;
  aborted.optimal = false;

  aborted.objective = 0.0;  // All-zero communication plateau.
  aborted.lower_bound = -1.0;
  EXPECT_EQ(aborted.optimality_gap(), 0.0);

  aborted.objective = -2.0;  // Reward-shifted objective.
  aborted.lower_bound = -5.0;
  EXPECT_EQ(aborted.optimality_gap(), 0.0);

  // A lower bound above the objective (rounding slack) also clamps to 0.
  aborted.objective = 4.0;
  aborted.lower_bound = 4.0 + 1e-12;
  EXPECT_EQ(aborted.optimality_gap(), 0.0);

  // Ordinary positive objectives keep the usual ratio.
  aborted.objective = 10.0;
  aborted.lower_bound = 7.5;
  EXPECT_DOUBLE_EQ(aborted.optimality_gap(), 0.25);

  // Proven-optimal and infeasible solutions have no gap regardless.
  IlpSolution optimal;
  optimal.feasible = true;
  optimal.optimal = true;
  optimal.objective = 10.0;
  optimal.lower_bound = 0.0;
  EXPECT_EQ(optimal.optimality_gap(), 0.0);
  IlpSolution infeasible;
  EXPECT_EQ(infeasible.optimality_gap(), 0.0);
}

}  // namespace
}  // namespace alpa
