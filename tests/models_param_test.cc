// Parameterized sweeps over ALL paper model configurations (Tables 5-7):
// graph construction invariants that must hold at every scale.
#include <gtest/gtest.h>

#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"
#include "src/solver/operator_clustering.h"

namespace alpa {
namespace {

// --- GPT (Table 5) ---

class GptCaseSweep : public ::testing::TestWithParam<int> {
 protected:
  GptConfig Config() const {
    GptConfig config = GptPaperCases()[static_cast<size_t>(GetParam())].config;
    // Shrink the microbatch so graph construction stays cheap; parameter
    // counts and structure are batch-independent.
    config.microbatch = 1;
    return config;
  }
};

TEST_P(GptCaseSweep, GraphParamsMatchAnalytic) {
  const GptConfig config = Config();
  const Graph graph = BuildGpt(config);
  EXPECT_EQ(graph.ParameterBytes() / DTypeBytes(config.dtype), config.NumParams());
}

TEST_P(GptCaseSweep, EveryParameterHasExactlyOneUpdate) {
  const Graph graph = BuildGpt(Config());
  std::map<int, int> updates;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kUpdate) {
      updates[op.param_id]++;
    }
  }
  for (int param : graph.ParameterIds()) {
    EXPECT_EQ(updates[param], 1) << graph.op(param).name;
  }
}

TEST_P(GptCaseSweep, WeightGradsAreFlagged) {
  const Graph graph = BuildGpt(Config());
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kUpdate) {
      EXPECT_TRUE(graph.op(op.operands[1]).weight_grad ||
                  graph.op(op.operands[1]).name.find("grad_acc") != std::string::npos)
          << graph.op(op.operands[1]).name;
    }
  }
}

TEST_P(GptCaseSweep, ClusteringFeasibleAtPaperGranularity) {
  Graph graph = BuildGpt(Config());
  ClusteringOptions options;
  options.num_layers = 16;
  const ClusteringResult result = ClusterOperators(graph, options);
  EXPECT_TRUE(result.feasible);
}

INSTANTIATE_TEST_SUITE_P(Table5, GptCaseSweep, ::testing::Range(0, 6),
                         [](const auto& info) {
                           std::string name =
                               "p" +
                               GptPaperCases()[static_cast<size_t>(info.param)].name.substr(4);
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- MoE (Table 6) ---

class MoeCaseSweep : public ::testing::TestWithParam<int> {
 protected:
  MoeConfig Config() const {
    MoeConfig config = MoePaperCases()[static_cast<size_t>(GetParam())].config;
    config.microbatch = 1;
    return config;
  }
};

TEST_P(MoeCaseSweep, GraphParamsMatchAnalytic) {
  const MoeConfig config = Config();
  const Graph graph = BuildMoe(config);
  EXPECT_EQ(graph.ParameterBytes() / DTypeBytes(config.dtype), config.NumParams());
}

TEST_P(MoeCaseSweep, HasOneMoeLayerPerTwoBlocks) {
  const MoeConfig config = Config();
  const Graph graph = BuildMoe(config);
  int dispatches = 0;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kMoeDispatch && op.role == OpRole::kForward) {
      ++dispatches;
    }
  }
  EXPECT_EQ(dispatches, static_cast<int>(config.num_layers) / 2);
}

TEST_P(MoeCaseSweep, ExpertCapacityDivisible) {
  const MoeConfig config = Config();
  EXPECT_EQ(config.expert_capacity() % 8, 0);
  EXPECT_GT(config.expert_capacity(), 0);
}

INSTANTIATE_TEST_SUITE_P(Table6, MoeCaseSweep, ::testing::Range(0, 6),
                         [](const auto& info) {
                           std::string name =
                               "p" +
                               MoePaperCases()[static_cast<size_t>(info.param)].name.substr(4);
                           for (char& c : name) {
                             if (c == '.' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Wide-ResNet (Table 7) ---

class WideResNetCaseSweep : public ::testing::TestWithParam<int> {
 protected:
  WideResNetConfig Config() const {
    WideResNetConfig config =
        WideResNetPaperCases()[static_cast<size_t>(GetParam())].config;
    config.microbatch = 8;
    return config;
  }
};

TEST_P(WideResNetCaseSweep, GraphParamsMatchAnalytic) {
  const WideResNetConfig config = Config();
  const Graph graph = BuildWideResNet(config);
  EXPECT_EQ(graph.ParameterBytes() / DTypeBytes(config.dtype), config.NumParams());
}

TEST_P(WideResNetCaseSweep, SpatialShrinksMonotonically) {
  const Graph graph = BuildWideResNet(Config());
  int64_t last_spatial = 1 << 30;
  for (const Operator& op : graph.ops()) {
    if (op.role == OpRole::kForward && op.type == OpType::kEinsum && op.shape.rank() == 3) {
      EXPECT_LE(op.shape.dim(1), last_spatial) << op.name;
      last_spatial = op.shape.dim(1);
    }
  }
}

TEST_P(WideResNetCaseSweep, ConvolutionsCarryHaloLabels) {
  const Graph graph = BuildWideResNet(Config());
  int halo_convs = 0;
  for (const Operator& op : graph.ops()) {
    if (op.type == OpType::kEinsum && !op.einsum.halo.empty()) {
      ++halo_convs;
    }
  }
  // Every 3x3 conv (one per bottleneck) + stem, forward and backward.
  EXPECT_GT(halo_convs, static_cast<int>(Config().num_layers) / 3);
}

INSTANTIATE_TEST_SUITE_P(Table7, WideResNetCaseSweep, ::testing::Range(0, 6),
                         [](const auto& info) {
                           std::string name =
                               WideResNetPaperCases()[static_cast<size_t>(info.param)].name;
                           for (char& c : name) {
                             if (c == '-' || c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace alpa
