#include <gtest/gtest.h>

#include <set>

#include "src/baselines/baselines.h"
#include "src/core/api.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"
#include "src/models/moe.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

TEST(Api, CompileAndSimulateMlp) {
  Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 2;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->latency, 0.0);
  EXPECT_GT(stats->pflops, 0.0);
}

TEST(Api, ThroughputBelowClusterPeak) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const double peak_pflops = 4 * cluster.device.peak_flops_fp16 / 1e15;
  EXPECT_LT(stats->pflops, peak_pflops);
  EXPECT_GT(stats->pflops, 0.01 * peak_pflops);
}

TEST(Api, MoreDevicesMoreThroughput) {
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  Graph g1 = BuildGpt(SmallGpt());
  Graph g4 = BuildGpt(SmallGpt());
  const StatusOr<ExecutionStats> on1 =
      CompileAndSimulate(g1, ClusterSpec::AwsP3(1, 1), options);
  const StatusOr<ExecutionStats> on4 =
      CompileAndSimulate(g4, ClusterSpec::AwsP3(1, 4), options);
  ASSERT_TRUE(on1.ok()) << on1.status().ToString();
  ASSERT_TRUE(on4.ok()) << on4.status().ToString();
  EXPECT_GT(on4->pflops, 1.5 * on1->pflops);
}

TEST(Api, IntraOnlyUsesSingleStage) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.enable_interop = false;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(plan.pipeline.stages.size(), 1u);
  EXPECT_EQ(plan.pipeline.stages[0].placement.shape.num_devices(), 4);
}

TEST(Api, InterOnlyUsesSingleDeviceStages) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.enable_intraop = false;
  options.inter.target_layers = 4;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const CompiledStage& stage : plan.pipeline.stages) {
    EXPECT_EQ(stage.placement.shape.num_devices(), 1);
  }
}

TEST(Api, AlpaBeatsOrMatchesRestrictedVariants) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const int microbatches = 8;
  const BaselineResult alpa = RunAlpa(BuildGpt(SmallGpt()), cluster, microbatches, 4);
  const BaselineResult intra = RunIntraOnly(BuildGpt(SmallGpt()), cluster, microbatches);
  const BaselineResult inter = RunInterOnly(BuildGpt(SmallGpt()), cluster, microbatches, 4);
  ASSERT_TRUE(alpa.stats.ok()) << alpa.stats.status().ToString();
  // Alpa's space contains both restrictions; its DP estimate cannot lose by
  // much (simulation adds transfer effects the DP approximates).
  if (intra.stats.ok()) {
    EXPECT_LE(alpa.stats->latency, intra.stats->latency * 1.15);
  }
  if (inter.stats.ok()) {
    EXPECT_LE(alpa.stats->latency, inter.stats->latency * 1.15);
  }
}

TEST(Api, GpipeVsOneFOneB) {
  Graph g1 = BuildGpt(SmallGpt());
  Graph g2 = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  options.inter.submesh_shapes = {SubmeshShape{1, 1}};  // Force 4 stages.
  options.schedule = PipelineScheduleType::k1F1B;
  const StatusOr<ExecutionStats> one_f = CompileAndSimulate(g1, cluster, options);
  options.schedule = PipelineScheduleType::kGpipe;
  const StatusOr<ExecutionStats> gpipe = CompileAndSimulate(g2, cluster, options);
  ASSERT_TRUE(one_f.ok()) << one_f.status().ToString();
  ASSERT_TRUE(gpipe.ok()) << gpipe.status().ToString();
  // Same latency, lower peak memory for 1F1B (2.2).
  EXPECT_NEAR(one_f->latency, gpipe->latency, 0.05 * gpipe->latency);
  EXPECT_LE(one_f->peak_memory_bytes, gpipe->peak_memory_bytes + 1.0);
}

TEST(Api, MoeCompiles) {
  MoeConfig config;
  config.hidden = 128;
  config.num_layers = 4;
  config.num_heads = 4;
  config.num_experts = 4;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 512;
  Graph graph = BuildMoe(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 4;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->pflops, 0.0);
}

TEST(Api, PlanCarriesFaultModelAndStageDevices) {
  Graph graph = BuildGpt(SmallGpt());
  ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  cluster.faults.stragglers.push_back(Straggler{2, 1.5});
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  EXPECT_EQ(plan.sim_input.devices_per_host, 4);
  ASSERT_EQ(plan.sim_input.stage_devices.size(), plan.pipeline.stages.size());
  // The stage device sets partition the cluster.
  std::set<int> seen;
  for (size_t s = 0; s < plan.pipeline.stages.size(); ++s) {
    EXPECT_EQ(plan.sim_input.stage_devices[s], plan.pipeline.stages[s].device_ids);
    EXPECT_EQ(static_cast<int>(plan.pipeline.stages[s].device_ids.size()),
              plan.pipeline.stages[s].placement.shape.num_devices());
    seen.insert(plan.pipeline.stages[s].device_ids.begin(),
                plan.pipeline.stages[s].device_ids.end());
  }
  EXPECT_EQ(seen.size(), 4u);
  ASSERT_EQ(plan.sim_input.faults.stragglers.size(), 1u);
  EXPECT_EQ(plan.sim_input.faults.stragglers[0].device, 2);

  // The straggler must slow the simulated iteration vs a healthy cluster.
  Graph healthy_graph = BuildGpt(SmallGpt());
  const StatusOr<ExecutionStats> healthy =
      CompileAndSimulate(healthy_graph, ClusterSpec::AwsP3(1, 4), options);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_GT(stats->latency, healthy->latency);
}

TEST(Api, RepairPlanValidatesArguments) {
  Graph graph = BuildGpt(SmallGpt());
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  RepairOptions repair_options;
  repair_options.failed_host = 7;
  EXPECT_EQ(RepairPlan(graph, ClusterSpec::AwsP3(2, 2), options, repair_options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  repair_options.failed_host = 0;
  EXPECT_EQ(RepairPlan(graph, ClusterSpec::AwsP3(1, 4), options, repair_options)
                .status()
                .code(),
            StatusCode::kInfeasible);
}

TEST(Api, RepairPlanShrinksClusterOnWarmIlpCache) {
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(2, 2);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;

  // Healthy compile warms the process-wide ILP cache with every submesh
  // variant of the 2x2 cluster, which includes all variants of the shrunk
  // 1x2 cluster.
  ParallelPlan plan;
  const StatusOr<ExecutionStats> healthy = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();

  RepairOptions repair_options;
  repair_options.failed_host = 1;
  repair_options.mtbf.mtbf_seconds = 86400.0;
  const StatusOr<RepairResult> repair = RepairPlan(graph, cluster, options, repair_options);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();

  EXPECT_EQ(repair->shrunk_cluster.num_hosts, 1);
  EXPECT_TRUE(repair->shrunk_cluster.faults.empty());
  EXPECT_TRUE(repair->plan.pipeline.feasible);
  // Every stage of the repaired plan fits the surviving hosts.
  for (const CompiledStage& stage : repair->plan.pipeline.stages) {
    for (int device : stage.device_ids) {
      EXPECT_LT(device, repair->shrunk_cluster.num_devices());
    }
  }
  EXPECT_GT(repair->stats.pflops, 0.0);
  EXPECT_LT(repair->stats.pflops, healthy->pflops);  // Half the devices.
  EXPECT_GT(repair->ilp_cache_hits, 0);  // The warm cache paid off.
  EXPECT_GT(repair->goodput_fraction, 0.0);
  EXPECT_LT(repair->goodput_fraction, 1.0);
  EXPECT_DOUBLE_EQ(repair->goodput_pflops,
                   repair->stats.pflops * repair->goodput_fraction);
  EXPECT_GT(repair->expected_downtime_seconds, 0.0);
  EXPECT_NE(repair->ToString().find("goodput"), std::string::npos);
}

TEST(Api, StatsToStringReadable) {
  ExecutionStats stats;
  stats.latency = 0.5;
  stats.pflops = 1.25;
  stats.peak_memory_bytes = 8e9;
  EXPECT_NE(stats.ToString().find("pflops=1.250"), std::string::npos);
  EXPECT_NE(stats.ToString().find("peak_mem="), std::string::npos);
}

}  // namespace
}  // namespace alpa
