#include <gtest/gtest.h>

#include "src/core/visualize.h"
#include "src/models/gpt.h"
#include "src/runtime/instruction.h"

namespace alpa {
namespace {

TEST(Instruction, SingleStageProgram) {
  const auto programs = EmitPipelinePrograms(PipelineScheduleType::k1F1B, 1, 2);
  ASSERT_EQ(programs.size(), 1u);
  // F0 B0 F1 B1 with alloc/free, no sends, one update.
  int sends = 0;
  int updates = 0;
  for (const MeshInstruction& inst : programs[0].instructions) {
    sends += (inst.kind == InstructionKind::kSendActivation ||
              inst.kind == InstructionKind::kSendGradient)
                 ? 1
                 : 0;
    updates += inst.kind == InstructionKind::kWeightUpdate ? 1 : 0;
  }
  EXPECT_EQ(sends, 0);
  EXPECT_EQ(updates, 1);
  EXPECT_EQ(ValidatePrograms(programs, 2), "");
}

TEST(Instruction, ProgramsValidateAcrossSchedulesAndSizes) {
  for (auto schedule : {PipelineScheduleType::kGpipe, PipelineScheduleType::k1F1B}) {
    for (int stages : {1, 2, 3, 5, 8}) {
      for (int microbatches : {1, 2, 7, 16}) {
        const auto programs = EmitPipelinePrograms(schedule, stages, microbatches);
        EXPECT_EQ(ValidatePrograms(programs, microbatches), "")
            << ToString(schedule) << " S=" << stages << " B=" << microbatches;
      }
    }
  }
}

TEST(Instruction, TransferCountsMatchTopology) {
  const int stages = 4;
  const int microbatches = 8;
  const auto programs = EmitPipelinePrograms(PipelineScheduleType::k1F1B, stages, microbatches);
  int sends = 0;
  for (const MeshProgram& program : programs) {
    for (const MeshInstruction& inst : program.instructions) {
      if (inst.kind == InstructionKind::kSendActivation) {
        ++sends;
      }
    }
  }
  // Each of the S-1 boundaries carries B forward transfers.
  EXPECT_EQ(sends, (stages - 1) * microbatches);
}

TEST(Instruction, ValidatorCatchesMissingRecv) {
  auto programs = EmitPipelinePrograms(PipelineScheduleType::k1F1B, 2, 2);
  // Drop the first recv of stage 1.
  auto& insts = programs[1].instructions;
  for (size_t i = 0; i < insts.size(); ++i) {
    if (insts[i].kind == InstructionKind::kRecvActivation) {
      insts.erase(insts.begin() + static_cast<long>(i));
      break;
    }
  }
  EXPECT_NE(ValidatePrograms(programs, 2), "");
}

TEST(Instruction, ValidatorCatchesDoubleFree) {
  auto programs = EmitPipelinePrograms(PipelineScheduleType::k1F1B, 1, 1);
  programs[0].instructions.push_back({InstructionKind::kFreeActivation, 0});
  EXPECT_NE(ValidatePrograms(programs, 1), "");
}

TEST(Instruction, ValidatorCatchesDeadlock) {
  // Two stages each waiting for the other's send before sending.
  std::vector<MeshProgram> programs(2);
  programs[0].stage = 0;
  programs[1].stage = 1;
  programs[0].instructions = {{InstructionKind::kRecvGradient, 0, 1},
                              {InstructionKind::kAllocActivation, 0},
                              {InstructionKind::kForward, 0},
                              {InstructionKind::kSendActivation, 0, 1},
                              {InstructionKind::kFreeActivation, 0}};
  programs[1].instructions = {{InstructionKind::kRecvActivation, 0, 0},
                              {InstructionKind::kAllocActivation, 0},
                              {InstructionKind::kForward, 0},
                              {InstructionKind::kSendGradient, 0, 0},
                              {InstructionKind::kFreeActivation, 0}};
  const std::string error = ValidatePrograms(programs, 1);
  EXPECT_NE(error.find("deadlock"), std::string::npos) << error;
}

TEST(Instruction, ToStringRoundtrip) {
  MeshInstruction inst{InstructionKind::kSendActivation, 3, 2};
  EXPECT_EQ(inst.ToString(), "SEND_ACT mb=3 peer=2");
  const auto programs = EmitPipelinePrograms(PipelineScheduleType::kGpipe, 2, 1);
  EXPECT_NE(programs[0].ToString().find("FORWARD"), std::string::npos);
}

TEST(Visualize, TimelineRendersAllStages) {
  PipelineSimInput input;
  input.num_microbatches = 4;
  for (int s = 0; s < 3; ++s) {
    input.stages.push_back(StageExecProfile{0.1, 0.2, 0.05, 0.01, 0.0, 0.0, 0.0});
  }
  const std::string chart = RenderPipelineTimeline(input, 60);
  EXPECT_NE(chart.find("stage  0"), std::string::npos);
  EXPECT_NE(chart.find("stage  2"), std::string::npos);
  // Bubbles ('.') must appear for a 3-stage pipeline with 4 microbatches.
  EXPECT_NE(chart.find('.'), std::string::npos);
  // Forward digits and backward letters appear.
  EXPECT_NE(chart.find('0'), std::string::npos);
  EXPECT_NE(chart.find('a'), std::string::npos);
}

TEST(Visualize, PlanSummaryShowsShardedOps) {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  Graph graph = BuildGpt(config);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 4;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = CompileAndSimulate(graph, cluster, options, &plan);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const std::string summary = RenderPlanSummary(plan.pipeline);
  EXPECT_NE(summary.find("stage 0"), std::string::npos);
  EXPECT_NE(summary.find("S"), std::string::npos);  // Some partitioned tensor.

  CompiledPipeline infeasible;
  EXPECT_EQ(RenderPlanSummary(infeasible), "(infeasible plan)\n");
}

}  // namespace
}  // namespace alpa
