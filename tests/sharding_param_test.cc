// Property-style sweeps over mesh shapes and tensor ranks (TEST_P).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/mesh/cluster_spec.h"
#include "src/mesh/device_mesh.h"
#include "src/spec/sharding_spec.h"

namespace alpa {
namespace {

// (logical dim0, logical dim1, tensor rank).
using SpecParam = std::tuple<int, int, int>;

class ShardingSweep : public ::testing::TestWithParam<SpecParam> {
 protected:
  ShardingSweep() : cluster_(ClusterSpec::AwsP3(1, 8)) {
    const auto [d0, d1, rank] = GetParam();
    MeshPlacement placement;
    placement.shape = SubmeshShape{1, d0 * d1};
    mesh_ = std::make_unique<DeviceMesh>(DeviceMesh::Create(cluster_, placement, {d0, d1}));
    std::vector<int64_t> dims;
    for (int d = 0; d < rank; ++d) {
      dims.push_back(64 << d);  // 64, 128, 256: divisible by all mesh dims.
    }
    shape_ = TensorShape(dims);
  }

  ClusterSpec cluster_;
  std::unique_ptr<DeviceMesh> mesh_;
  TensorShape shape_;
};

TEST_P(ShardingSweep, ShardedBytesTimesShardsEqualsTotal) {
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(shape_.rank())) {
    if (!spec.IsValidFor(shape_, *mesh_)) {
      continue;
    }
    EXPECT_EQ(spec.ShardedBytes(shape_, 4, *mesh_) * spec.TotalShards(*mesh_),
              shape_.elements() * 4)
        << spec.ToString();
  }
}

TEST_P(ShardingSweep, TilesCoverTensorExactly) {
  // Summed tile volumes over all devices = elements x replication factor.
  for (const ShardingSpec& spec : ShardingSpec::Enumerate(shape_.rank())) {
    if (!spec.IsValidFor(shape_, *mesh_)) {
      continue;
    }
    double total = 0.0;
    for (int i = 0; i < mesh_->dim(0); ++i) {
      for (int j = 0; j < mesh_->dim(1); ++j) {
        const auto tile = spec.TileSlice(shape_, *mesh_, i, j);
        double volume = 1.0;
        for (const auto& [lo, hi] : tile) {
          ASSERT_LE(lo, hi);
          ASSERT_GE(lo, 0);
          volume *= static_cast<double>(hi - lo);
        }
        total += volume;
      }
    }
    const double replication =
        static_cast<double>(mesh_->num_devices()) / spec.TotalShards(*mesh_);
    EXPECT_DOUBLE_EQ(total, static_cast<double>(shape_.elements()) * replication)
        << spec.ToString();
  }
}

TEST_P(ShardingSweep, ReshardTriangleInequalityViaReplicated) {
  // Going through the fully replicated layout is never cheaper than the
  // direct conversion (the direct path is at most gather + free slice).
  const ShardingSpec replicated = ShardingSpec::Replicated(shape_.rank());
  for (const ShardingSpec& src : ShardingSpec::Enumerate(shape_.rank())) {
    if (!src.IsValidFor(shape_, *mesh_)) {
      continue;
    }
    for (const ShardingSpec& dst : ShardingSpec::Enumerate(shape_.rank())) {
      if (!dst.IsValidFor(shape_, *mesh_)) {
        continue;
      }
      const double direct = ReshardCost(src, dst, shape_, 4, *mesh_);
      const double via = ReshardCost(src, replicated, shape_, 4, *mesh_) +
                         ReshardCost(replicated, dst, shape_, 4, *mesh_);
      EXPECT_LE(direct, via + 1e-12) << src.ToString() << "->" << dst.ToString();
    }
  }
}

TEST_P(ShardingSweep, ReshardZeroIffSliceOrIdentity) {
  for (const ShardingSpec& src : ShardingSpec::Enumerate(shape_.rank())) {
    if (!src.IsValidFor(shape_, *mesh_)) {
      continue;
    }
    // Slicing from replicated is always free.
    EXPECT_DOUBLE_EQ(
        ReshardCost(ShardingSpec::Replicated(shape_.rank()), src, shape_, 4, *mesh_), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(MeshAndRank, ShardingSweep,
                         ::testing::Values(SpecParam{1, 8, 2}, SpecParam{2, 4, 2},
                                           SpecParam{4, 2, 2}, SpecParam{8, 1, 2},
                                           SpecParam{2, 4, 3}, SpecParam{2, 2, 3},
                                           SpecParam{2, 4, 1}, SpecParam{2, 2, 4}),
                         [](const auto& info) {
                           return "mesh" + std::to_string(std::get<0>(info.param)) + "x" +
                                  std::to_string(std::get<1>(info.param)) + "_rank" +
                                  std::to_string(std::get<2>(info.param));
                         });

}  // namespace
}  // namespace alpa
