// Parameterized pipeline schedule/simulator invariants (TEST_P sweeps over
// schedule type, stage count, and microbatch count).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/runtime/pipeline_schedule.h"
#include "src/runtime/simulator.h"

namespace alpa {
namespace {

using Param = std::tuple<PipelineScheduleType, int, int>;  // (schedule, S, B)

class ScheduleSweep : public ::testing::TestWithParam<Param> {
 protected:
  PipelineScheduleType schedule_type() const { return std::get<0>(GetParam()); }
  int stages() const { return std::get<1>(GetParam()); }
  int microbatches() const { return std::get<2>(GetParam()); }
};

TEST_P(ScheduleSweep, DependenciesRespectedWithinStage) {
  const auto schedule = BuildPipelineSchedule(schedule_type(), stages(), microbatches());
  for (const auto& program : schedule) {
    std::vector<char> forwarded(static_cast<size_t>(microbatches()), 0);
    bool updated = false;
    for (const auto& inst : program) {
      switch (inst.kind) {
        case PipelineInstruction::Kind::kForward:
          EXPECT_FALSE(updated);
          forwarded[static_cast<size_t>(inst.microbatch)] = 1;
          break;
        case PipelineInstruction::Kind::kBackward:
          // Backward of microbatch i only after its own forward.
          EXPECT_TRUE(forwarded[static_cast<size_t>(inst.microbatch)]);
          break;
        case PipelineInstruction::Kind::kUpdate:
          updated = true;
          break;
      }
    }
    EXPECT_TRUE(updated);
  }
}

TEST_P(ScheduleSweep, SimulatorLatencyBounds) {
  PipelineSimInput input;
  input.schedule = schedule_type();
  input.num_microbatches = microbatches();
  const double tf = 0.01;
  const double tb = 0.02;
  for (int s = 0; s < stages(); ++s) {
    input.stages.push_back(StageExecProfile{tf, tb, 0.0, 0.0, 0.0, 0.0, 0.0});
  }
  const auto result = SimulatePipeline(input);
  const double per_mb = tf + tb;
  // Lower bound: the bottleneck stage's serial work. Upper bound: fully
  // serial execution.
  EXPECT_GE(result.latency, microbatches() * per_mb - 1e-12);
  EXPECT_LE(result.latency, stages() * microbatches() * per_mb + 1e-12);
  // Eq. 2 exactly for uniform stages without transfers.
  EXPECT_NEAR(result.latency, (stages() - 1) * per_mb + microbatches() * per_mb, 1e-9);
}

TEST_P(ScheduleSweep, PeakMemoryMatchesInFlightBound) {
  PipelineSimInput input;
  input.schedule = schedule_type();
  input.num_microbatches = microbatches();
  for (int s = 0; s < stages(); ++s) {
    StageExecProfile p;
    p.t_forward = 0.01;
    p.t_backward = 0.02;
    p.act_bytes_per_microbatch = 1.0;
    input.stages.push_back(p);
  }
  const auto result = SimulatePipeline(input);
  for (int s = 0; s < stages(); ++s) {
    const int bound =
        MaxInFlightMicrobatches(schedule_type(), stages(), s, microbatches());
    EXPECT_LE(result.stage_peak_bytes[static_cast<size_t>(s)], bound + 1e-9) << s;
    EXPECT_GE(result.stage_peak_bytes[static_cast<size_t>(s)], 1.0 - 1e-9) << s;
  }
}

TEST_P(ScheduleSweep, BusyTimeIsExactlyComputeTime) {
  PipelineSimInput input;
  input.schedule = schedule_type();
  input.num_microbatches = microbatches();
  for (int s = 0; s < stages(); ++s) {
    input.stages.push_back(StageExecProfile{0.01, 0.02, 0.005, 0.0, 0.0, 0.0, 0.0});
  }
  const auto result = SimulatePipeline(input);
  for (double busy : result.stage_busy_seconds) {
    EXPECT_NEAR(busy, microbatches() * 0.03 + 0.005, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleSweep,
    ::testing::Combine(::testing::Values(PipelineScheduleType::kGpipe,
                                         PipelineScheduleType::k1F1B),
                       ::testing::Values(1, 2, 4, 7), ::testing::Values(1, 4, 16)),
    [](const auto& info) {
      std::string name = "sched_" + ToString(std::get<0>(info.param)) + "_s" +
                         std::to_string(std::get<1>(info.param)) + "_b" +
                         std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace alpa
