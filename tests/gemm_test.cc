#include "src/exec/gemm.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <utility>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/exec/kernels.h"
#include "src/graph/operator.h"
#include "src/graph/tensor.h"

namespace alpa {
namespace exec {
namespace {

// The contract GemmF64Acc promises bit-identity with: one fresh f64
// accumulator per output cell, ascending k, added to C once at the end.
void NaiveGemmF64Acc(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
                     double* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t l = 0; l < k; ++l) {
        acc += static_cast<double>(a[i * k + l]) * static_cast<double>(b[l * n + j]);
      }
      c[i * n + j] += acc;
    }
  }
}

std::vector<float> RandomFloats(const std::string& tag, int64_t count) {
  std::vector<float> data(static_cast<size_t>(count));
  const uint64_t key = HashName(tag);
  for (int64_t i = 0; i < count; ++i) {
    data[static_cast<size_t>(i)] = GenValue(key, i);
  }
  return data;
}

// Dimensions that stress every blocking boundary: 1, primes straddling the
// register tile, the tile sizes themselves, and one-past.
const int64_t kDims[] = {1, 2, 3, 5, 7, 13, 31, 64, 65};

TEST(GemmF64Acc, BitIdenticalToNaiveTripleLoop) {
  GemmScratch scratch;
  int checked = 0;
  for (int64_t m : kDims) {
    for (int64_t n : kDims) {
      for (int64_t k : kDims) {
        // Keep the sweep fast: skip the large-all-three corner.
        if (m * n * k > 70000) {
          continue;
        }
        const std::vector<float> a = RandomFloats("a", m * k);
        const std::vector<float> b = RandomFloats("b", k * n);
        std::vector<double> c(static_cast<size_t>(m * n));
        std::vector<double> want(static_cast<size_t>(m * n));
        // Non-zero starting C exercises the += contract.
        for (size_t i = 0; i < c.size(); ++i) {
          c[i] = want[i] = 0.125 * static_cast<double>(i % 17) - 1.0;
        }
        GemmF64Acc(m, n, k, a.data(), b.data(), c.data(), &scratch);
        NaiveGemmF64Acc(m, n, k, a.data(), b.data(), want.data());
        ASSERT_EQ(c, want) << "m=" << m << " n=" << n << " k=" << k;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 500);
}

TEST(GemmF64Acc, LargeSquareStillExact) {
  const int64_t m = 97, n = 89, k = 101;
  const std::vector<float> a = RandomFloats("la", m * k);
  const std::vector<float> b = RandomFloats("lb", k * n);
  std::vector<double> c(static_cast<size_t>(m * n), 0.0);
  std::vector<double> want = c;
  GemmF64Acc(m, n, k, a.data(), b.data(), c.data());
  NaiveGemmF64Acc(m, n, k, a.data(), b.data(), want.data());
  EXPECT_EQ(c, want);
}

double SgemmRefAt(const std::vector<float>& buf, bool trans, int64_t ld, int64_t row,
                  int64_t col) {
  // Logical element (row, col); trans means the storage is (col, row).
  const int64_t idx = trans ? col * ld + row : row * ld + col;
  return static_cast<double>(buf[static_cast<size_t>(idx)]);
}

// SgemmF32 accumulates in f32, so under FMA contraction it is NOT bit-equal
// to a scalar loop — the contract is layout correctness within a small
// relative tolerance of the f64 reference.
TEST(SgemmF32, AllTransposeCombosMatchReferenceWithinTolerance) {
  for (bool trans_a : {false, true}) {
    for (bool trans_b : {false, true}) {
      for (auto [m, n, k] :
           std::vector<std::array<int64_t, 3>>{{1, 1, 1}, {5, 3, 7}, {17, 13, 31}, {64, 65, 33}}) {
        // Pad leading dimensions to prove the kernel honours them.
        const int64_t lda = (trans_a ? m : k) + 3;
        const int64_t ldb = (trans_b ? k : n) + 2;
        const int64_t ldc = n + 5;
        const std::vector<float> a = RandomFloats("sa", (trans_a ? k : m) * lda);
        const std::vector<float> b = RandomFloats("sb", (trans_b ? n : k) * ldb);
        std::vector<float> c(static_cast<size_t>(m * ldc), -7.5f);
        SgemmF32(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb, c.data(), ldc);
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            double want = 0.0;
            for (int64_t l = 0; l < k; ++l) {
              want += SgemmRefAt(a, trans_a, lda, i, l) * SgemmRefAt(b, trans_b, ldb, l, j);
            }
            const double got = static_cast<double>(c[static_cast<size_t>(i * ldc + j)]);
            ASSERT_NEAR(got, want, 1e-4 * (1.0 + std::fabs(want)))
                << "ta=" << trans_a << " tb=" << trans_b << " m=" << m << " n=" << n
                << " k=" << k << " i=" << i << " j=" << j;
          }
          // Padding columns past n must stay untouched.
          for (int64_t j = n; j < ldc; ++j) {
            ASSERT_EQ(c[static_cast<size_t>(i * ldc + j)], -7.5f);
          }
        }
      }
    }
  }
}

// --- Einsum GEMM lowering vs the odometer reference ----------------------

Operator MakeEinsum(const std::string& output, const std::vector<std::string>& operand_specs,
                    const std::map<char, int64_t>& extents) {
  Operator op;
  op.id = 100;
  op.type = OpType::kEinsum;
  op.name = "einsum";
  op.einsum.output = output;
  op.einsum.operands = operand_specs;
  op.einsum.extents = extents;
  std::vector<int64_t> dims;
  for (char label : output) {
    dims.push_back(extents.at(label));
  }
  op.shape = TensorShape(dims);
  for (size_t i = 0; i < operand_specs.size(); ++i) {
    op.operands.push_back(static_cast<int>(i));
  }
  return op;
}

HostTensor MakeOperand(const std::string& spec, const std::map<char, int64_t>& extents,
                       const std::string& tag) {
  std::vector<int64_t> dims;
  for (char label : spec) {
    dims.push_back(extents.at(label));
  }
  HostTensor t = HostTensor::Uninitialized(TensorShape(dims));
  const uint64_t key = HashName(tag);
  for (int64_t i = 0; i < t.elements(); ++i) {
    t.data()[i] = GenValue(key, i);
  }
  return t;
}

struct EinsumCase {
  std::string output;
  std::vector<std::string> operand_specs;
  std::map<char, int64_t> extents;
};

// The sweep covers GEMM-lowerable shapes (plain, batched, transposed
// layouts, merged row/col labels, multi-label contractions) and shapes that
// must take the odometer fallback (duplicate labels, single operand): both
// paths must agree bit for bit either way.
std::vector<EinsumCase> EinsumCases() {
  return {
      {"mn", {"mk", "kn"}, {{'m', 5}, {'n', 3}, {'k', 7}}},
      {"mn", {"mk", "kn"}, {{'m', 1}, {'n', 1}, {'k', 1}}},
      {"mn", {"mk", "kn"}, {{'m', 64}, {'n', 65}, {'k', 31}}},
      {"bmn", {"bmk", "bkn"}, {{'b', 3}, {'m', 4}, {'n', 2}, {'k', 5}}},
      {"mn", {"km", "kn"}, {{'m', 6}, {'n', 4}, {'k', 9}}},   // A transposed layout.
      {"mn", {"mk", "nk"}, {{'m', 6}, {'n', 4}, {'k', 9}}},   // B transposed layout.
      {"mn", {"km", "nk"}, {{'m', 6}, {'n', 4}, {'k', 9}}},   // Both transposed.
      {"abc", {"abk", "kc"}, {{'a', 3}, {'b', 4}, {'c', 5}, {'k', 6}}},  // Merged rows.
      {"mn", {"mab", "abn"}, {{'m', 4}, {'n', 3}, {'a', 2}, {'b', 5}}},  // 2-label contraction.
      {"bsh", {"bsk", "kh"}, {{'b', 2}, {'s', 8}, {'h', 16}, {'k', 16}}},  // GPT projection.
      {"ab", {"aa", "ab"}, {{'a', 4}, {'b', 3}}},  // Duplicate label: fallback.
      {"m", {"mk"}, {{'m', 5}, {'k', 7}}},         // Single operand: fallback.
  };
}

TEST(EinsumGemm, LoweringBitIdenticalToReference) {
  for (const EinsumCase& c : EinsumCases()) {
    const Operator op = MakeEinsum(c.output, c.operand_specs, c.extents);
    std::vector<HostTensor> storage;
    storage.reserve(c.operand_specs.size());
    std::vector<const HostTensor*> operands;
    for (size_t i = 0; i < c.operand_specs.size(); ++i) {
      storage.push_back(
          MakeOperand(c.operand_specs[i], c.extents, c.output + ":" + std::to_string(i)));
    }
    for (const HostTensor& t : storage) {
      operands.push_back(&t);
    }
    const std::string contraction = op.einsum.ContractionLabels();
    const int64_t extent = contraction.empty() ? 1 : op.einsum.Extent(contraction[0]);
    const Box full = FullBox(op.shape);

    std::vector<double> fast;
    std::vector<double> ref;
    EvalEinsumPartials(op, operands, 0, extent, full, &fast);
    EvalEinsumPartialsReference(op, operands, 0, extent, full, &ref);
    ASSERT_EQ(fast, ref) << c.output << " full range";

    // Split contraction ranges (the ring all-reduce partials).
    if (extent >= 2) {
      const int64_t mid = extent / 2;
      for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{{0, mid}, {mid, extent}}) {
        EvalEinsumPartials(op, operands, lo, hi, full, &fast);
        EvalEinsumPartialsReference(op, operands, lo, hi, full, &ref);
        ASSERT_EQ(fast, ref) << c.output << " range [" << lo << "," << hi << ")";
      }
    }

    // Interior sub-box (a device tile).
    Box box = full;
    bool shrunk = false;
    for (auto& [lo, hi] : box) {
      if (hi - lo >= 2) {
        const int64_t span = hi - lo;
        lo = span / 4;
        hi = lo + (span + 1) / 2;
        shrunk = true;
      }
    }
    if (shrunk) {
      EvalEinsumPartials(op, operands, 0, extent, box, &fast);
      EvalEinsumPartialsReference(op, operands, 0, extent, box, &ref);
      ASSERT_EQ(fast, ref) << c.output << " sub-box";
    }
  }
}

}  // namespace
}  // namespace exec
}  // namespace alpa
