// Randomized cross-check of the staged solver pipeline (presolve + DP
// folding + variable elimination + flat branch & bound) against the
// pre-overhaul solver kept behind IlpEngine::kLegacy. Both engines are
// exact, so on every problem where neither aborts, objectives must agree
// to rounding — and with continuous random costs the optimum is unique,
// so the full choice vectors must be bit-identical too. The staged engine
// must additionally be invariant to the thread pool and to its
// process-wide core memo.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/solver/ilp_solver.h"
#include "src/support/rng.h"
#include "src/support/thread_pool.h"

namespace alpa {
namespace {

IlpProblem RandomProblem(Rng& rng, int nodes, int max_choices, double edge_prob,
                         double inf_prob) {
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_choices)));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[static_cast<size_t>(v)].push_back(rng.NextDouble(0, 10));
    }
  }
  for (int u = 0; u < nodes; ++u) {
    for (int v = u + 1; v < nodes; ++v) {
      if (rng.NextDouble() > edge_prob) {
        continue;
      }
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          double c = rng.NextDouble(0, 5);
          if (inf_prob > 0 && rng.NextDouble() < inf_prob) {
            c = kInfCost;
          }
          row.push_back(c);
        }
      }
      problem.edges.push_back(std::move(edge));
    }
  }
  return problem;
}

IlpSolution SolveWith(const IlpProblem& problem, IlpEngine engine,
                      ThreadPool* pool = nullptr, bool use_memo = false) {
  IlpSolverOptions options;
  options.engine = engine;
  options.pool = pool;
  options.use_core_memo = use_memo;
  return IlpSolver(options).Solve(problem);
}

TEST(SolverCrossCheck, StagedMatchesLegacyOnRandomProblems) {
  Rng rng(1234);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(9));
    const double edge_prob = rng.NextDouble(0.1, 0.8);
    const double inf_prob = trial % 4 == 0 ? 0.1 : 0.0;
    const IlpProblem problem =
        RandomProblem(rng, nodes, 4, edge_prob, inf_prob);
    const IlpSolution staged = SolveWith(problem, IlpEngine::kStaged);
    const IlpSolution legacy = SolveWith(problem, IlpEngine::kLegacy);
    ASSERT_TRUE(legacy.optimal || !legacy.feasible) << trial;
    ASSERT_TRUE(staged.optimal || !staged.feasible) << trial;
    EXPECT_EQ(staged.feasible, legacy.feasible) << trial;
    if (staged.feasible && legacy.feasible) {
      EXPECT_NEAR(staged.objective, legacy.objective, 1e-9) << "trial " << trial;
      // The returned assignment must actually produce the objective.
      EXPECT_NEAR(staged.objective, problem.Evaluate(staged.choice), 1e-9) << trial;
      ++solved;
    }
  }
  EXPECT_GT(solved, 100);  // The suite must mostly exercise the feasible path.
}

TEST(SolverCrossCheck, StagedMatchesLegacyOnDenserGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int nodes = 8 + static_cast<int>(rng.NextBounded(6));
    const IlpProblem problem = RandomProblem(rng, nodes, 3, 0.35, 0.0);
    const IlpSolution staged = SolveWith(problem, IlpEngine::kStaged);
    const IlpSolution legacy = SolveWith(problem, IlpEngine::kLegacy);
    if (staged.optimal && legacy.optimal) {
      EXPECT_NEAR(staged.objective, legacy.objective, 1e-9) << "trial " << trial;
    } else {
      // Aborted searches still return valid assignments.
      EXPECT_NEAR(staged.objective, problem.Evaluate(staged.choice), 1e-9) << trial;
    }
  }
}

TEST(SolverCrossCheck, OptimalPlansAreBitIdentical) {
  // Continuous random costs make the optimum unique (ties have measure
  // zero), so whenever both engines prove optimality the full choice
  // vectors — the plans at this layer — must agree exactly, not just the
  // objectives. This is the plan-identity leg of the acceptance check;
  // budget-aborted incumbents are excluded because they are engine-specific.
  Rng rng(4242);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(10));
    const double edge_prob = rng.NextDouble(0.1, 0.7);
    const IlpProblem problem = RandomProblem(rng, nodes, 4, edge_prob, 0.0);
    const IlpSolution staged = SolveWith(problem, IlpEngine::kStaged);
    const IlpSolution legacy = SolveWith(problem, IlpEngine::kLegacy);
    if (staged.optimal && legacy.optimal) {
      EXPECT_EQ(staged.choice, legacy.choice) << "trial " << trial;
      ++compared;
    }
  }
  EXPECT_GT(compared, 150);  // Nearly every trial must reach optimality.
}

TEST(SolverCrossCheck, PoolDoesNotChangeTheSolution) {
  Rng rng(555);
  ThreadPool pool(4);
  for (int trial = 0; trial < 40; ++trial) {
    const int nodes = 4 + static_cast<int>(rng.NextBounded(8));
    const IlpProblem problem = RandomProblem(rng, nodes, 4, 0.5, trial % 3 == 0 ? 0.1 : 0.0);
    const IlpSolution serial = SolveWith(problem, IlpEngine::kStaged, nullptr);
    const IlpSolution parallel = SolveWith(problem, IlpEngine::kStaged, &pool);
    ASSERT_EQ(serial.choice, parallel.choice) << "trial " << trial;
    EXPECT_EQ(serial.objective, parallel.objective) << trial;  // Bitwise.
    EXPECT_EQ(serial.optimal, parallel.optimal) << trial;
    EXPECT_EQ(serial.nodes_explored, parallel.nodes_explored) << trial;
  }
}

TEST(SolverCrossCheck, CoreMemoHitReturnsIdenticalSolution) {
  Rng rng(777);
  ClearIlpCoreMemo();
  for (int trial = 0; trial < 20; ++trial) {
    const int nodes = 5 + static_cast<int>(rng.NextBounded(6));
    const IlpProblem problem = RandomProblem(rng, nodes, 4, 0.5, 0.0);
    const IlpSolution without = SolveWith(problem, IlpEngine::kStaged, nullptr, false);
    const IlpSolution miss = SolveWith(problem, IlpEngine::kStaged, nullptr, true);
    const IlpSolution hit = SolveWith(problem, IlpEngine::kStaged, nullptr, true);
    EXPECT_EQ(without.choice, miss.choice) << trial;
    EXPECT_EQ(miss.choice, hit.choice) << trial;
    EXPECT_EQ(miss.objective, hit.objective) << trial;
    EXPECT_EQ(miss.nodes_explored, hit.nodes_explored) << trial;
  }
  ClearIlpCoreMemo();
}

TEST(SolverCrossCheck, SeedFloorHoldsUnderTinyBudget) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const IlpProblem problem = RandomProblem(rng, 12, 4, 0.5, 0.0);
    // An arbitrary (not even locally optimal) seed assignment.
    std::vector<int> seed(12);
    for (int v = 0; v < 12; ++v) {
      seed[static_cast<size_t>(v)] =
          static_cast<int>(rng.NextBounded(static_cast<uint64_t>(problem.num_choices(v))));
    }
    IlpSolverOptions options;
    options.max_search_nodes = 3;       // Force an immediate abort...
    options.max_elimination_table = 0;  // ...by pinning the core to B&B.
    options.seeds = {seed};
    const IlpSolution solution = IlpSolver(options).Solve(problem);
    ASSERT_TRUE(solution.feasible) << trial;
    EXPECT_LE(solution.objective, problem.Evaluate(seed) + 1e-12) << trial;
    EXPECT_NEAR(solution.objective, problem.Evaluate(solution.choice), 1e-9) << trial;
  }
}

TEST(SolverCrossCheck, StagedSolvesDisconnectedComponentsExactly) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    // Two independent triangles plus an isolated chain: component
    // splitting must solve each piece and stitch the assignment together.
    IlpProblem problem = RandomProblem(rng, 9, 3, 0.0, 0.0);
    auto add_edge = [&](int u, int v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
      for (auto& row : edge.cost) {
        for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
          row.push_back(rng.NextDouble(0, 5));
        }
      }
      problem.edges.push_back(std::move(edge));
    };
    add_edge(0, 1);
    add_edge(1, 2);
    add_edge(0, 2);
    add_edge(3, 4);
    add_edge(4, 5);
    add_edge(3, 5);
    add_edge(6, 7);
    add_edge(7, 8);
    const IlpSolution staged = SolveWith(problem, IlpEngine::kStaged);
    const IlpSolution legacy = SolveWith(problem, IlpEngine::kLegacy);
    ASSERT_TRUE(staged.optimal) << trial;
    EXPECT_NEAR(staged.objective, legacy.objective, 1e-9) << trial;
  }
}

TEST(SolverCrossCheck, PortfolioMatchesStagedOnRandomProblems) {
  // The portfolio engine only adds incumbents to the exact search, so
  // wherever both engines prove optimality the unique optimum (continuous
  // random costs) must come back bit-identical.
  Rng rng(8686);
  int compared = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(10));
    const double edge_prob = rng.NextDouble(0.1, 0.7);
    const double inf_prob = trial % 5 == 0 ? 0.1 : 0.0;
    const IlpProblem problem = RandomProblem(rng, nodes, 4, edge_prob, inf_prob);
    const IlpSolution staged = SolveWith(problem, IlpEngine::kStaged);
    const IlpSolution portfolio = SolveWith(problem, IlpEngine::kPortfolio);
    EXPECT_EQ(staged.feasible, portfolio.feasible) << trial;
    if (staged.optimal && portfolio.optimal && staged.feasible) {
      EXPECT_NEAR(staged.objective, portfolio.objective, 1e-9) << "trial " << trial;
      EXPECT_EQ(staged.choice, portfolio.choice) << "trial " << trial;
      ++compared;
    }
    if (portfolio.feasible) {
      EXPECT_NEAR(portfolio.objective, problem.Evaluate(portfolio.choice), 1e-9) << trial;
    }
  }
  EXPECT_GT(compared, 100);
}

TEST(SolverCrossCheck, PortfolioPoolDoesNotChangeTheSolution) {
  Rng rng(929);
  ThreadPool pool(4);
  for (int trial = 0; trial < 30; ++trial) {
    const int nodes = 6 + static_cast<int>(rng.NextBounded(8));
    const IlpProblem problem = RandomProblem(rng, nodes, 4, 0.6, trial % 3 == 0 ? 0.1 : 0.0);
    IlpSolverOptions serial_options;
    serial_options.engine = IlpEngine::kPortfolio;
    serial_options.use_core_memo = false;
    serial_options.max_elimination_table = 0;  // Keep the race on the B&B path.
    serial_options.max_search_nodes = 8'192;   // Abort-prone on the dense trials.
    IlpSolverOptions pooled_options = serial_options;
    pooled_options.pool = &pool;
    const IlpSolution serial = IlpSolver(serial_options).Solve(problem);
    const IlpSolution parallel = IlpSolver(pooled_options).Solve(problem);
    ASSERT_EQ(serial.choice, parallel.choice) << "trial " << trial;
    EXPECT_EQ(serial.objective, parallel.objective) << trial;  // Bitwise.
    EXPECT_EQ(serial.optimal, parallel.optimal) << trial;
    EXPECT_EQ(serial.nodes_explored, parallel.nodes_explored) << trial;
    EXPECT_EQ(serial.lower_bound, parallel.lower_bound) << trial;
  }
}

}  // namespace
}  // namespace alpa
