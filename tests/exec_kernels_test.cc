#include "src/exec/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/host_tensor.h"
#include "src/exec/interpreter.h"
#include "src/models/gpt.h"
#include "src/models/mlp.h"

namespace alpa {
namespace exec {
namespace {

GptConfig TinyGpt() {
  GptConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 4;
  config.vocab = 32;
  return config;
}

TEST(HostTensor, GenerationIsRandomAccessAndDeterministic) {
  const uint64_t key = HashName("w");
  EXPECT_EQ(GenValue(key, 7), GenValue(key, 7));
  EXPECT_NE(GenValue(key, 7), GenValue(key, 8));
  EXPECT_NE(GenValue(key, 7), GenValue(HashName("w2"), 7));
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = GenValue(key, i);
    EXPECT_GE(v, -0.25f);
    EXPECT_LT(v, 0.25f);
    const float id = GenIntValue(key, i, 32);
    EXPECT_GE(id, 0.0f);
    EXPECT_LT(id, 32.0f);
    EXPECT_EQ(id, std::floor(id));
  }
}

TEST(HostTensor, LeafKeySeparatesParametersFromPerMicrobatchInputs) {
  // Parameters ignore the microbatch; inputs fold it in.
  EXPECT_EQ(LeafKey(1, "w", OpType::kParameter, 0), LeafKey(1, "w", OpType::kParameter, 3));
  EXPECT_NE(LeafKey(1, "x", OpType::kInput, 0), LeafKey(1, "x", OpType::kInput, 1));
  EXPECT_NE(LeafKey(1, "w", OpType::kParameter, 0), LeafKey(2, "w", OpType::kParameter, 0));
}

TEST(HostTensor, ExtractInsertRoundTrip) {
  HostTensor full(TensorShape{4, 6});
  for (int64_t i = 0; i < full.elements(); ++i) {
    full.data()[i] = static_cast<float>(i);
  }
  const Box box{{1, 3}, {2, 5}};
  const TileData tile = ExtractTile(full, box);
  EXPECT_EQ(tile.data.size(), 6u);
  HostTensor copy(TensorShape{4, 6});
  InsertTile(tile, &copy);
  ForEachIndex(box, [&](const std::vector<int64_t>& index) {
    EXPECT_EQ(copy.at(index), full.at(index));
  });
}

// Evaluates the whole graph with full tensors (microbatch 0, seed 0),
// returning every op's materialized value — the fixture for the kernel
// property tests below.
std::map<int, HostTensor> EvalFullGraph(const Graph& graph) {
  std::map<int, HostTensor> values;
  for (int id = 0; id < graph.size(); ++id) {
    const Operator& op = graph.op(id);
    if (op.type == OpType::kInput || op.type == OpType::kParameter) {
      values.emplace(id, GenerateLeaf(op, 0, 0));
      continue;
    }
    std::vector<const HostTensor*> operands;
    for (int operand : op.operands) {
      operands.push_back(&values.at(operand));
    }
    TileData tile = FullTile(op.shape);
    EvalOpRegion(op, operands, &tile);
    HostTensor full(op.shape);
    InsertTile(tile, &full);
    values.emplace(id, std::move(full));
  }
  return values;
}

// The central kernel property: any output box produces the same cell values
// as the full evaluation — sharded compute is bit-identical by construction.
TEST(Kernels, EveryOpIsRegionIndependent) {
  Graph graph = BuildGpt(TinyGpt());
  const std::map<int, HostTensor> values = EvalFullGraph(graph);
  int checked = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const Operator& op = graph.op(id);
    if (op.type == OpType::kInput || op.type == OpType::kParameter) {
      continue;
    }
    std::vector<const HostTensor*> operands;
    for (int operand : op.operands) {
      operands.push_back(&values.at(operand));
    }
    // A representative interior box (middle half of every dim).
    Box box = FullBox(op.shape);
    for (auto& [lo, hi] : box) {
      if (hi - lo >= 2) {
        const int64_t extent = hi - lo;
        lo = extent / 4;
        hi = lo + extent / 2;
      }
    }
    TileData part;
    part.full_shape = op.shape;
    part.box = box;
    EvalOpRegion(op, operands, &part);
    const TileData want = ExtractTile(values.at(id), box);
    EXPECT_EQ(part.data, want.data) << "op " << op.name;
    ++checked;
  }
  EXPECT_GT(checked, 20);
}

// Splitting the first contraction label and summing double partials across
// chunks reproduces the unsplit double sums exactly (addition of disjoint
// index ranges in the same nesting order is associative over doubles here
// because each partial is itself accumulated in range order).
TEST(Kernels, EinsumPartialsSumToFullEvaluation) {
  Graph graph = BuildGpt(TinyGpt());
  const std::map<int, HostTensor> values = EvalFullGraph(graph);
  int checked = 0;
  for (int id = 0; id < graph.size(); ++id) {
    const Operator& op = graph.op(id);
    if (op.type != OpType::kEinsum) {
      continue;
    }
    const std::string contraction = op.einsum.ContractionLabels();
    if (contraction.empty()) {
      continue;
    }
    const int64_t extent = op.einsum.Extent(contraction[0]);
    if (extent < 2) {
      continue;
    }
    std::vector<const HostTensor*> operands;
    for (int operand : op.operands) {
      operands.push_back(&values.at(operand));
    }
    const Box box = FullBox(op.shape);
    std::vector<double> full;
    EvalEinsumPartials(op, operands, 0, extent, box, &full);
    for (int k : {2, 4}) {
      if (extent % k != 0) {
        continue;
      }
      std::vector<double> sum(full.size(), 0.0);
      for (int c = 0; c < k; ++c) {
        std::vector<double> part;
        EvalEinsumPartials(op, operands, extent * c / k, extent * (c + 1) / k, box, &part);
        for (size_t i = 0; i < sum.size(); ++i) {
          sum[i] += part[i];
        }
      }
      for (size_t i = 0; i < sum.size(); ++i) {
        EXPECT_NEAR(sum[i], full[i], 1e-12 * (1.0 + std::fabs(full[i]))) << op.name;
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 5);
}

TEST(Interpreter, DeterministicAcrossRunsAndSeedSensitive) {
  Graph graph = BuildGpt(TinyGpt());
  const ReferenceResult a = RunReference(graph, 2, 0);
  const ReferenceResult b = RunReference(graph, 2, 0);
  const ReferenceResult c = RunReference(graph, 2, 1);
  ASSERT_EQ(a.microbatch_loss.size(), 2u);
  EXPECT_EQ(a.microbatch_loss, b.microbatch_loss);
  EXPECT_NE(a.microbatch_loss, c.microbatch_loss);
  ASSERT_FALSE(a.weight_grads.empty());
  ASSERT_EQ(a.weight_grads.size(), a.updated_params.size());
  for (const auto& [name, grad] : a.weight_grads) {
    EXPECT_EQ(grad.vec(), b.weight_grads.at(name).vec()) << name;
    // The optimizer step actually moved the parameters.
    double norm = 0;
    for (int64_t i = 0; i < grad.elements(); ++i) {
      norm += std::fabs(grad.data()[i]);
    }
    EXPECT_GT(norm, 0.0) << name;
  }
  for (float loss : a.microbatch_loss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(Interpreter, MicrobatchCountChangesAccumulatedGradients) {
  MlpConfig mlp;
  mlp.batch = 4;
  mlp.input_dim = 8;
  mlp.hidden_dims = {16, 16};
  mlp.output_dim = 8;
  Graph graph = BuildMlp(mlp);
  const ReferenceResult one = RunReference(graph, 1, 0);
  const ReferenceResult two = RunReference(graph, 2, 0);
  ASSERT_FALSE(one.weight_grads.empty());
  bool any_different = false;
  for (const auto& [name, grad] : one.weight_grads) {
    any_different = any_different || grad.vec() != two.weight_grads.at(name).vec();
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace exec
}  // namespace alpa
