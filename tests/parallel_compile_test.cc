// Determinism and memoization of the parallel compilation pipeline: for
// any thread count the compiler must produce a plan satisfying PlanEquals
// with the serial one, and structurally identical layers must reuse ILP
// solves through the process-wide memo cache.
#include <gtest/gtest.h>

#include "src/core/api.h"
#include "src/inter/inter_pass.h"
#include "src/inter/stage_profiler.h"
#include "src/intra/ilp_cache.h"
#include "src/mesh/submesh.h"
#include "src/models/gpt.h"
#include "src/models/wide_resnet.h"

namespace alpa {
namespace {

GptConfig SmallGpt() {
  GptConfig config;
  config.hidden = 256;
  config.num_layers = 4;
  config.num_heads = 8;
  config.microbatch = 4;
  config.seq_len = 128;
  config.vocab = 1024;
  return config;
}

InterOpOptions FastOptions() {
  InterOpOptions options;
  options.num_microbatches = 8;
  options.target_layers = 4;
  options.profiler.intra.solver.max_search_nodes = 20'000;
  return options;
}

// Compiles the graph with the given thread count from a cold memo cache,
// so the two runs of a comparison do identical work.
CompiledPipeline CompileCold(Graph graph, const ClusterSpec& cluster, InterOpOptions options,
                             int threads) {
  IlpMemoCache::Global().Clear();
  options.compile_threads = threads;
  return RunInterOpPass(graph, cluster, options);
}

TEST(ParallelCompile, GptPlanIdenticalAcrossThreadCounts) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  const InterOpOptions options = FastOptions();
  Graph serial_graph = BuildGpt(SmallGpt());
  Graph parallel_graph = BuildGpt(SmallGpt());
  const CompiledPipeline serial = CompileCold(serial_graph, cluster, options, 1);
  const CompiledPipeline parallel = CompileCold(parallel_graph, cluster, options, 4);
  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_TRUE(PlanEquals(serial, parallel));
  EXPECT_EQ(serial.dp_latency, parallel.dp_latency);
  EXPECT_EQ(serial.max_stage_latency, parallel.max_stage_latency);
  EXPECT_EQ(serial.stats.ilp_solves, parallel.stats.ilp_solves);
  ASSERT_EQ(serial.stages.size(), parallel.stages.size());
  for (size_t s = 0; s < serial.stages.size(); ++s) {
    EXPECT_EQ(serial.stages[s].layer_begin, parallel.stages[s].layer_begin);
    EXPECT_EQ(serial.stages[s].layer_end, parallel.stages[s].layer_end);
    EXPECT_TRUE(serial.stages[s].placement == parallel.stages[s].placement);
  }
  EXPECT_EQ(serial.stats.threads_used, 1);
  EXPECT_EQ(parallel.stats.threads_used, 4);
}

TEST(ParallelCompile, WideResNetPlanIdenticalAcrossThreadCounts) {
  WideResNetConfig config;
  config.microbatch = 8;
  config.base_channels = 64;
  config.width_factor = 2;
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options = FastOptions();
  options.target_layers = 8;
  Graph serial_graph = BuildWideResNet(config);
  Graph parallel_graph = BuildWideResNet(config);
  const CompiledPipeline serial = CompileCold(serial_graph, cluster, options, 1);
  const CompiledPipeline parallel = CompileCold(parallel_graph, cluster, options, 3);
  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_TRUE(PlanEquals(serial, parallel));
}

TEST(ParallelCompile, EqualLayerSearchIdenticalAcrossThreadCounts) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  InterOpOptions options = FastOptions();
  options.equal_layer_stages = true;
  Graph serial_graph = BuildGpt(SmallGpt());
  Graph parallel_graph = BuildGpt(SmallGpt());
  const CompiledPipeline serial = CompileCold(serial_graph, cluster, options, 1);
  const CompiledPipeline parallel = CompileCold(parallel_graph, cluster, options, 4);
  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(parallel.feasible);
  EXPECT_TRUE(PlanEquals(serial, parallel));
}

TEST(ParallelCompile, MemoCacheServesSecondProfiler) {
  IlpMemoCache::Global().Clear();
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const std::vector<SubmeshShape> shapes = EnumerateSubmeshShapes(cluster);
  StageProfilerOptions options;
  options.intra.solver.max_search_nodes = 20'000;

  StageProfiler first(graph, cluster, shapes, options);
  const int num_variants = static_cast<int>(first.variants().size());
  for (int v = 0; v < num_variants; ++v) {
    first.Profile(0, first.num_layers() - 1, v);
  }
  EXPECT_GT(first.num_ilp_solves(), 0);
  EXPECT_EQ(first.cache_hits(), 0);
  EXPECT_EQ(first.cache_misses(), first.num_ilp_solves());

  // Same graph, fresh profiler: every solve is served from the cache.
  StageProfiler second(graph, cluster, shapes, options);
  for (int v = 0; v < num_variants; ++v) {
    second.Profile(0, second.num_layers() - 1, v);
  }
  EXPECT_EQ(second.num_ilp_solves(), 0);
  EXPECT_EQ(second.cache_hits(), first.num_ilp_solves());
  EXPECT_EQ(second.cache_misses(), 0);

  // And the results agree with the first profiler's.
  for (int v = 0; v < num_variants; ++v) {
    const StageProfile a = first.Profile(0, first.num_layers() - 1, v);
    const StageProfile b = second.Profile(0, second.num_layers() - 1, v);
    EXPECT_EQ(a.t_intra, b.t_intra);
    EXPECT_EQ(a.weight_bytes, b.weight_bytes);
  }
}

TEST(ParallelCompile, CacheDisabledReSolves) {
  IlpMemoCache::Global().Clear();
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const std::vector<SubmeshShape> shapes = {SubmeshShape{1, 1}};
  StageProfilerOptions options;
  options.use_ilp_cache = false;
  options.intra.solver.max_search_nodes = 20'000;

  StageProfiler first(graph, cluster, shapes, options);
  first.Profile(0, first.num_layers() - 1, 0);
  StageProfiler second(graph, cluster, shapes, options);
  second.Profile(0, second.num_layers() - 1, 0);
  EXPECT_GT(second.num_ilp_solves(), 0);
  EXPECT_EQ(second.cache_hits(), 0);
  EXPECT_EQ(IlpMemoCache::Global().size(), 0u);
}

TEST(ParallelCompile, SolvesWithFiltersBypassCache) {
  IlpMemoCache::Global().Clear();
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  const std::vector<SubmeshShape> shapes = {SubmeshShape{1, 1}};
  StageProfilerOptions options;
  options.intra.solver.max_search_nodes = 20'000;
  // A caller-provided filter is an opaque closure: not hashable, so the
  // solve must not be cached (a later filterless run would otherwise pick
  // up filtered results).
  options.intra.filter = [](const Graph&, const DeviceMesh&, const Operator&,
                            const ParallelAlgorithm&) { return true; };
  StageProfiler profiler(graph, cluster, shapes, options);
  profiler.Profile(0, profiler.num_layers() - 1, 0);
  EXPECT_GT(profiler.num_ilp_solves(), 0);
  EXPECT_EQ(profiler.cache_misses(), 0);
  EXPECT_EQ(IlpMemoCache::Global().size(), 0u);
}

TEST(ParallelCompile, ApiMirrorsCompileThreads) {
  IlpMemoCache::Global().Clear();
  Graph graph = BuildGpt(SmallGpt());
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 2);
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.compile_threads = 2;
  options.inter.target_layers = 2;
  options.inter.profiler.intra.solver.max_search_nodes = 20'000;
  const StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->compile_stats.threads_used, 2);
  EXPECT_GT(plan->compile_stats.profiling_wall_seconds, 0.0);
}

}  // namespace
}  // namespace alpa
