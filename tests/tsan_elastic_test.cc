// ThreadSanitizer harness for the elastic runtime.
//
// Runs the full churn loop with BACKGROUND speculative presolves (a real
// thread pool, concurrent Parallelize calls mutating independent graph
// copies) twice, under -fsanitize=thread, and requires the determinism
// fingerprints to be bit-identical — both to each other and to an inline
// (threads=0) run. Any race in the speculator's cache/in-flight
// accounting, the planner drain, or a presolve sharing mutable graph
// state fails the run. Kept small: TSan slows execution by an order of
// magnitude.
#include <cstdio>

#include "src/elastic/elastic.h"
#include "src/models/mlp.h"

int main() {
  using namespace alpa;

  const Graph graph = BuildMlp(MlpConfig{});
  const ClusterSpec initial = ClusterSpec::AwsP3(2, 2);
  ParallelizeOptions options;
  options.num_microbatches = 4;
  options.inter.target_layers = 2;

  elastic::ElasticOptions elastic;
  elastic.churn.horizon_seconds = 2000.0;
  elastic.churn.host_mtbf_seconds = 400.0;
  elastic.churn.seed = 0x5eedULL;
  elastic.churn.scheduled.push_back(
      {600.0, elastic::ChurnEventKind::kHostJoin, -1, DeviceSpec::V100()});
  elastic.churn.scheduled.push_back(
      {1200.0, elastic::ChurnEventKind::kHostJoin, -1, DeviceSpec::A100()});
  elastic.speculative = true;

  uint64_t fingerprints[3] = {};
  const int thread_counts[3] = {4, 4, 0};  // Two pooled runs + inline reference.
  for (int i = 0; i < 3; ++i) {
    elastic.threads = thread_counts[i];
    const StatusOr<elastic::ElasticRunResult> run =
        elastic::RunElasticLoop(graph, initial, options, elastic);
    if (!run.ok()) {
      std::fprintf(stderr, "RunElasticLoop failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    if (run->events_applied == 0) {
      std::fprintf(stderr, "churn stream applied no events; scenario too quiet\n");
      return 1;
    }
    fingerprints[i] = run->DeterminismFingerprint();
  }
  if (fingerprints[0] != fingerprints[1] || fingerprints[0] != fingerprints[2]) {
    std::fprintf(stderr,
                 "fingerprint mismatch: pooled %016llx / %016llx vs inline %016llx\n",
                 static_cast<unsigned long long>(fingerprints[0]),
                 static_cast<unsigned long long>(fingerprints[1]),
                 static_cast<unsigned long long>(fingerprints[2]));
    return 1;
  }
  std::printf("elastic loop deterministic under TSan: %016llx\n",
              static_cast<unsigned long long>(fingerprints[0]));
  return 0;
}
