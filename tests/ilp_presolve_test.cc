#include "src/solver/ilp_presolve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/solver/ilp_solver.h"
#include "src/support/rng.h"

namespace alpa {
namespace {

double BruteForce(const IlpProblem& problem, std::vector<int>* best_choice = nullptr) {
  std::vector<int> choice(static_cast<size_t>(problem.num_nodes()), 0);
  double best = kInfCost;
  while (true) {
    const double value = problem.Evaluate(choice);
    if (value < best) {
      best = value;
      if (best_choice != nullptr) {
        *best_choice = choice;
      }
    }
    int i = 0;
    while (i < problem.num_nodes()) {
      if (++choice[static_cast<size_t>(i)] < problem.num_choices(i)) {
        break;
      }
      choice[static_cast<size_t>(i)] = 0;
      ++i;
    }
    if (i == problem.num_nodes()) {
      break;
    }
  }
  return best;
}

IlpProblem::Edge RandomEdge(Rng& rng, const IlpProblem& problem, int u, int v) {
  IlpProblem::Edge edge;
  edge.u = u;
  edge.v = v;
  edge.cost.resize(problem.node_costs[static_cast<size_t>(u)].size());
  for (auto& row : edge.cost) {
    for (size_t j = 0; j < problem.node_costs[static_cast<size_t>(v)].size(); ++j) {
      row.push_back(rng.NextDouble(0, 5));
    }
  }
  return edge;
}

IlpProblem RandomNodes(Rng& rng, int nodes, int max_choices) {
  IlpProblem problem;
  problem.node_costs.resize(static_cast<size_t>(nodes));
  for (int v = 0; v < nodes; ++v) {
    const int k = 1 + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_choices)));
    for (int i = 0; i < k; ++i) {
      problem.node_costs[static_cast<size_t>(v)].push_back(rng.NextDouble(0, 10));
    }
  }
  return problem;
}

// End-to-end exactness harness: presolve, brute-force the residual core,
// reconstruct, and compare against brute force on the original problem.
void ExpectPresolveExact(const IlpProblem& problem) {
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  std::vector<int> core_choice(static_cast<size_t>(pre.core.num_nodes()), 0);
  if (pre.core.num_nodes() > 0) {
    BruteForce(pre.core, &core_choice);
  }
  const std::vector<int> full = pre.Reconstruct(core_choice);
  EXPECT_NEAR(problem.Evaluate(full), BruteForce(problem), 1e-9);
}

TEST(IlpPresolve, ParallelEdgesMergedByHashMap) {
  IlpProblem problem;
  problem.node_costs = {{0.0, 0.0}, {0.0, 0.0}};
  problem.edges.push_back(IlpProblem::Edge{0, 1, {{1.0, 0.0}, {0.0, 1.0}}});
  // Reversed orientation: must be transposed into the canonical matrix.
  problem.edges.push_back(IlpProblem::Edge{1, 0, {{0.0, 3.0}, {3.0, 0.0}}});
  const PresolvedProblem pre = Presolve(problem);
  EXPECT_EQ(pre.stats.parallel_edges_merged, 1);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, ManyParallelEdgesStillOneMatrixPerPair) {
  Rng rng(17);
  IlpProblem problem = RandomNodes(rng, 3, 3);
  for (int copy = 0; copy < 3; ++copy) {
    for (int u = 0; u < 3; ++u) {
      for (int v = u + 1; v < 3; ++v) {
        // Alternate orientation per copy to exercise the transpose path.
        problem.edges.push_back(copy % 2 == 0 ? RandomEdge(rng, problem, u, v)
                                              : RandomEdge(rng, problem, v, u));
      }
    }
  }
  const PresolvedProblem pre = Presolve(problem);
  EXPECT_EQ(pre.stats.parallel_edges_merged, 6);  // 9 raw edges, 3 pairs.
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, DominatedChoiceEliminated) {
  // K4 (nothing peels: every degree is 3), node 0 has a choice whose best
  // case (100) cannot beat choice 0's worst case (0 + 5 + 5 + 5).
  IlpProblem problem;
  problem.node_costs = {{0.0, 100.0}, {1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
      problem.edges.push_back(edge);
    }
  }
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_GE(pre.stats.choices_eliminated, 1);
  ASSERT_EQ(pre.kept[0].size(), 1u);
  EXPECT_EQ(pre.kept[0][0], 0);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, DominanceTieKeepsLowerIndex) {
  // Node 0's choices 0 and 1 are exactly identical (same unary, same flat
  // edge rows): the tie rule must keep index 0, matching first-wins argmin.
  // K4 so degree-2 series reduction cannot preempt the dominance pass.
  IlpProblem problem;
  problem.node_costs = {{2.0, 2.0, 9.0}, {1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      if (u == 0) {
        // Flat rows so worst(0) == best(1): a pure tie between 0 and 1.
        edge.cost = {{1.0, 1.0}, {1.0, 1.0}, {0.0, 0.0}};
      } else {
        edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
      }
      problem.edges.push_back(edge);
    }
  }
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  ASSERT_FALSE(pre.kept[0].empty());
  EXPECT_EQ(pre.kept[0][0], 0);
  // Index 1 is identical to 0 and must be the dropped one.
  for (int kept : pre.kept[0]) {
    EXPECT_NE(kept, 1);
  }
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, ChainFoldsAwayCompletely) {
  Rng rng(23);
  IlpProblem problem = RandomNodes(rng, 8, 4);
  for (int v = 0; v + 1 < 8; ++v) {
    problem.edges.push_back(RandomEdge(rng, problem, v, v + 1));
  }
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.core.num_nodes(), 0);
  EXPECT_EQ(pre.stats.nodes_folded, 8);
  EXPECT_EQ(pre.stats.edges_folded, 7);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, RandomTreesFoldAway) {
  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(7));
    IlpProblem problem = RandomNodes(rng, nodes, 4);
    for (int v = 1; v < nodes; ++v) {
      const int u = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(v)));
      problem.edges.push_back(RandomEdge(rng, problem, u, v));
    }
    const PresolvedProblem pre = Presolve(problem);
    ASSERT_FALSE(pre.infeasible) << trial;
    EXPECT_EQ(pre.core.num_nodes(), 0) << trial;
    ExpectPresolveExact(problem);
  }
}

TEST(IlpPresolve, CycleFoldsAwayBySeriesReduction) {
  // A 4-cycle with balanced costs: nothing dominates and nothing peels by
  // degree 0/1, but series reduction contracts the ring node by node until
  // nothing is left.
  IlpProblem problem;
  problem.node_costs = {{0.0, 1.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}};
  const int ring[4] = {0, 1, 2, 3};
  for (int k = 0; k < 4; ++k) {
    IlpProblem::Edge edge;
    edge.u = ring[k];
    edge.v = ring[(k + 1) % 4];
    if (edge.u > edge.v) std::swap(edge.u, edge.v);
    edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
    problem.edges.push_back(edge);
  }
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.core.num_nodes(), 0);
  EXPECT_EQ(pre.stats.nodes_folded, 4);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, PendantAndTriangleFoldAwayCompletely) {
  // Triangle plus a pendant leaf: the leaf folds by degree 1, then series
  // reduction collapses the triangle.
  Rng rng(31);
  IlpProblem problem = RandomNodes(rng, 4, 3);
  problem.edges.push_back(RandomEdge(rng, problem, 0, 1));
  problem.edges.push_back(RandomEdge(rng, problem, 1, 2));
  problem.edges.push_back(RandomEdge(rng, problem, 0, 2));
  problem.edges.push_back(RandomEdge(rng, problem, 0, 3));  // Pendant.
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.core.num_nodes(), 0);
  EXPECT_EQ(pre.stats.nodes_folded, 4);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, CliqueLeavesResidualCore) {
  // K4 is treewidth 3: every node has degree 3, so series reduction cannot
  // fire and the core survives for branch & bound.
  IlpProblem problem;
  problem.node_costs = {{0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}, {0.0, 1.0}};
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      IlpProblem::Edge edge;
      edge.u = u;
      edge.v = v;
      edge.cost = {{5.0, 0.0}, {0.0, 5.0}};
      problem.edges.push_back(edge);
    }
  }
  const PresolvedProblem pre = Presolve(problem);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.core.num_nodes(), 4);
  EXPECT_EQ(pre.core.edges.size(), 6u);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, LadderFoldsAwayBySeriesReduction) {
  // A 2xN ladder (treewidth 2) with random costs: series reduction plus
  // leaf peeling must dissolve it entirely, and reconstruction must be
  // exact (brute-force comparison inside the harness).
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    const int rungs = 3 + static_cast<int>(rng.NextBounded(3));
    IlpProblem problem = RandomNodes(rng, 2 * rungs, 3);
    for (int r = 0; r < rungs; ++r) {
      problem.edges.push_back(RandomEdge(rng, problem, 2 * r, 2 * r + 1));
      if (r + 1 < rungs) {
        problem.edges.push_back(RandomEdge(rng, problem, 2 * r, 2 * r + 2));
        problem.edges.push_back(RandomEdge(rng, problem, 2 * r + 1, 2 * r + 3));
      }
    }
    const PresolvedProblem pre = Presolve(problem);
    ASSERT_FALSE(pre.infeasible) << trial;
    EXPECT_EQ(pre.core.num_nodes(), 0) << trial;
    ExpectPresolveExact(problem);
  }
}

TEST(IlpPresolve, SeriesFoldHandlesInfeasiblePairs) {
  // A 4-cycle where one edge forbids the (0, 0) combination: the folded
  // matrix must carry the infinity through and the reconstructed optimum
  // must avoid it.
  IlpProblem problem;
  problem.node_costs = {{0.0, 2.0}, {0.0, 2.0}, {0.0, 2.0}, {0.0, 2.0}};
  auto ring_edge = [&](int u, int v, double block) {
    IlpProblem::Edge edge;
    edge.u = u;
    edge.v = v;
    edge.cost = {{block, 1.0}, {1.0, 0.5}};
    problem.edges.push_back(edge);
  };
  ring_edge(0, 1, kInfCost);
  ring_edge(1, 2, 0.25);
  ring_edge(2, 3, 0.25);
  ring_edge(0, 3, 0.25);
  ExpectPresolveExact(problem);
}

TEST(IlpPresolve, InfeasibleLeafFoldDetected) {
  IlpProblem problem;
  problem.node_costs = {{0.0}, {0.0}};
  problem.edges.push_back(IlpProblem::Edge{0, 1, {{kInfCost}}});
  const PresolvedProblem pre = Presolve(problem);
  EXPECT_TRUE(pre.infeasible);
  const IlpSolution solution = IlpSolver().Solve(problem);
  EXPECT_FALSE(solution.feasible);
}

TEST(IlpPresolve, RandomGraphsReconstructExactly) {
  Rng rng(37);
  for (int trial = 0; trial < 60; ++trial) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(7));
    IlpProblem problem = RandomNodes(rng, nodes, 4);
    for (int u = 0; u < nodes; ++u) {
      for (int v = u + 1; v < nodes; ++v) {
        if (rng.NextDouble() < 0.45) {
          problem.edges.push_back(RandomEdge(rng, problem, u, v));
        }
      }
    }
    ExpectPresolveExact(problem);
  }
}

TEST(IlpPresolve, FingerprintSeparatesProblems) {
  Rng rng(41);
  IlpProblem a = RandomNodes(rng, 5, 3);
  for (int v = 0; v + 1 < 5; ++v) {
    a.edges.push_back(RandomEdge(rng, a, v, v + 1));
  }
  IlpProblem b = a;
  EXPECT_EQ(IlpProblemFingerprint(a), IlpProblemFingerprint(b));
  b.edges[2].cost[0][0] += 1e-9;
  EXPECT_NE(IlpProblemFingerprint(a), IlpProblemFingerprint(b));
  IlpProblem c = a;
  c.node_costs[3][0] = -c.node_costs[3][0];
  EXPECT_NE(IlpProblemFingerprint(a), IlpProblemFingerprint(c));
}

}  // namespace
}  // namespace alpa
