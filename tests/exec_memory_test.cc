// Liveness analysis, arena offset assignment, and the end-to-end memory
// accounting contract: on real compiled plans the runtime-measured per-device
// peak must stay inside both the arena plan and the analytical model
// (with rematerialization disabled, so the model counts every activation
// the executor actually stores).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/core/api.h"
#include "src/exec/arena.h"
#include "src/exec/executor.h"
#include "src/exec/liveness.h"
#include "src/models/gpt.h"
#include "src/models/moe.h"
#include "src/models/wide_resnet.h"

namespace alpa {
namespace exec {
namespace {

TensorRef Ref(int op, int mb = 0, bool transit = false) { return TensorRef{op, mb, transit}; }

const LiveInterval* Find(const std::vector<LiveInterval>& intervals, const TensorRef& ref) {
  for (const LiveInterval& iv : intervals) {
    if (iv.ref == ref) {
      return &iv;
    }
  }
  return nullptr;
}

TEST(Liveness, IntervalsFromDefUseStream) {
  // inst0: def A; inst1: def B, use A; inst2: use A, use B;
  // inst3: def C; inst4: use C.
  std::vector<InstructionAccess> accesses(5);
  accesses[0].defs = {{Ref(0), 100}};
  accesses[1].defs = {{Ref(1), 50}};
  accesses[1].uses = {Ref(0)};
  accesses[2].uses = {Ref(0), Ref(1)};
  accesses[3].defs = {{Ref(2), 200}};
  accesses[4].uses = {Ref(2)};

  const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
  ASSERT_EQ(intervals.size(), 3u);
  const LiveInterval* a = Find(intervals, Ref(0));
  const LiveInterval* b = Find(intervals, Ref(1));
  const LiveInterval* c = Find(intervals, Ref(2));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->def, 0);
  EXPECT_EQ(a->last_use, 2);
  EXPECT_EQ(a->bytes, 100);
  EXPECT_EQ(b->def, 1);
  EXPECT_EQ(b->last_use, 2);
  EXPECT_EQ(c->def, 3);
  EXPECT_EQ(c->last_use, 4);

  // Peak: A+B live at inst2 (150) < C alone at 3..4 (200).
  EXPECT_EQ(PeakLiveBytes(intervals), 200);

  const std::vector<std::vector<TensorRef>> release = ReleaseLists(intervals, 5);
  ASSERT_EQ(release.size(), 5u);
  EXPECT_TRUE(release[0].empty());
  EXPECT_TRUE(release[1].empty());
  EXPECT_EQ(release[2].size(), 2u);  // A and B die after inst2.
  EXPECT_TRUE(release[3].empty());
  EXPECT_EQ(release[4], std::vector<TensorRef>{Ref(2)});
}

TEST(Liveness, UseBeforeDefOpensAtTheUse) {
  std::vector<InstructionAccess> accesses(4);
  accesses[0].uses = {Ref(7)};
  accesses[2].defs = {{Ref(7), 64}};
  accesses[3].uses = {Ref(7)};
  const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].def, 0);
  EXPECT_EQ(intervals[0].last_use, 3);
  EXPECT_EQ(intervals[0].bytes, 64);
}

TEST(Liveness, RedefinitionExtendsAndKeepsMaxBytes) {
  std::vector<InstructionAccess> accesses(5);
  accesses[0].defs = {{Ref(3), 100}};
  accesses[2].defs = {{Ref(3), 40}};
  accesses[4].uses = {Ref(3)};
  const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].def, 0);
  EXPECT_EQ(intervals[0].last_use, 4);
  EXPECT_EQ(intervals[0].bytes, 100);
}

TEST(Liveness, SameInstructionDefAndUseIsLiveOnlyThere) {
  std::vector<InstructionAccess> accesses(3);
  accesses[1].defs = {{Ref(9, -1), 32}};
  accesses[1].uses = {Ref(9, -1)};
  const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].def, 1);
  EXPECT_EQ(intervals[0].last_use, 1);
}

TEST(Liveness, TransitAndValueRefsAreDistinct) {
  std::vector<InstructionAccess> accesses(2);
  accesses[0].defs = {{Ref(4, 0, false), 10}, {Ref(4, 0, true), 20}};
  accesses[1].uses = {Ref(4, 0, false), Ref(4, 0, true)};
  const std::vector<LiveInterval> intervals = ComputeLiveness(accesses);
  EXPECT_EQ(intervals.size(), 2u);
}

// --- Arena offset assignment ---------------------------------------------

bool Overlap(const ArenaAssignment& a, const ArenaAssignment& b) {
  return a.def <= b.last_use && b.def <= a.last_use && a.offset < b.offset + b.bytes &&
         b.offset < a.offset + a.bytes;
}

TEST(ArenaPlanTest, OverlappingIntervalsNeverAlias) {
  // A deterministic pseudo-random pile of intervals with heavy overlap.
  std::vector<LiveInterval> intervals;
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int i = 0; i < 60; ++i) {
    LiveInterval iv;
    iv.ref = Ref(i, static_cast<int>(next() % 4));
    iv.def = static_cast<int>(next() % 40);
    iv.last_use = iv.def + static_cast<int>(next() % 15);
    iv.bytes = static_cast<int64_t>(next() % 5000) + 1;
    intervals.push_back(iv);
  }
  const ArenaPlan plan = PlanArena(intervals);
  EXPECT_TRUE(PlanIsValid(plan));
  ASSERT_EQ(plan.assignments.size(), intervals.size());
  int64_t total = 0;
  for (const ArenaAssignment& a : plan.assignments) {
    EXPECT_EQ(a.offset % 64, 0);
    EXPECT_LE(a.offset + a.bytes, plan.arena_bytes);
    total += (a.bytes + 63) / 64 * 64;
  }
  // Pairwise non-aliasing, independently of PlanIsValid.
  for (size_t i = 0; i < plan.assignments.size(); ++i) {
    for (size_t j = i + 1; j < plan.assignments.size(); ++j) {
      EXPECT_FALSE(Overlap(plan.assignments[i], plan.assignments[j])) << i << " vs " << j;
    }
  }
  EXPECT_GE(plan.arena_bytes, plan.peak_live_bytes);
  EXPECT_LE(plan.arena_bytes, total);
  EXPECT_EQ(plan.peak_live_bytes, PeakLiveBytes(intervals));
}

TEST(ArenaPlanTest, DisjointLifetimesReuseAddresses) {
  // Ten same-sized buffers, each dead before the next is born: the slab
  // should hold exactly one of them.
  std::vector<LiveInterval> intervals;
  for (int i = 0; i < 10; ++i) {
    intervals.push_back(LiveInterval{Ref(i), 2 * i, 2 * i + 1, 1024});
  }
  const ArenaPlan plan = PlanArena(intervals);
  EXPECT_TRUE(PlanIsValid(plan));
  EXPECT_EQ(plan.arena_bytes, 1024);
  for (const ArenaAssignment& a : plan.assignments) {
    EXPECT_EQ(a.offset, 0);
  }
}

TEST(ArenaPlanTest, ZeroByteIntervalsTakeNoSpace) {
  std::vector<LiveInterval> intervals = {LiveInterval{Ref(0), 0, 5, 0},
                                         LiveInterval{Ref(1), 0, 5, 256}};
  const ArenaPlan plan = PlanArena(intervals);
  EXPECT_TRUE(PlanIsValid(plan));
  EXPECT_EQ(plan.arena_bytes, 256);
}

TEST(ArenaRuntime, BumpAllocationAlignsReusesAndGrows) {
  Arena arena;
  float* f = arena.AllocFloats(10);
  double* d = arena.AllocDoubles(10);
  ASSERT_NE(f, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(f) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(d) % 64, 0u);
  // Both views are writable across their full extent (ASan-checked).
  for (int i = 0; i < 10; ++i) {
    f[i] = 1.0f;
    d[i] = 2.0;
  }
  const int64_t high = arena.high_water_bytes();
  EXPECT_GE(high, static_cast<int64_t>(10 * sizeof(float) + 10 * sizeof(double)));

  arena.Reset();
  float* again = arena.AllocFloats(10);
  // After Reset the slab is recycled from the start.
  EXPECT_EQ(again, f);
  EXPECT_EQ(arena.high_water_bytes(), high);

  arena.Reset();
  float* big = arena.AllocFloats(1 << 20);
  ASSERT_NE(big, nullptr);
  big[0] = 3.0f;
  big[(1 << 20) - 1] = 4.0f;
  EXPECT_GE(arena.capacity_bytes(), static_cast<int64_t>(sizeof(float)) * (1 << 20));
}

// --- End-to-end: measured peak vs plan vs model --------------------------

// Compiles on a 4-GPU host as a pipeline of 1x2 meshes with
// rematerialization off, executes deterministically, and checks every
// device's memory accounting chain.
void CheckMemoryAccounting(Graph& graph, int num_microbatches) {
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = num_microbatches;
  options.inter.submesh_shapes = {SubmeshShape{1, 2}};
  // The analytical model only bounds the runtime when it counts every
  // internal activation the executor stores.
  options.inter.profiler.intra.rematerialize = false;
  StatusOr<ParallelPlan> plan = Parallelize(graph, cluster, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ExecOptions exec_options;
  exec_options.reduction = ReductionMode::kDeterministic;
  StatusOr<ExecResult> result = ExecutePlan(*plan, graph, cluster, exec_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->device_memory.size(), 4u);
  std::set<std::pair<int, int>> seen;
  for (const DeviceMemoryStats& dm : result->device_memory) {
    seen.insert({dm.stage, dm.rank});
    EXPECT_GT(dm.measured_peak_bytes, 0) << "stage " << dm.stage << " rank " << dm.rank;
    // The arena plan can only pad (alignment) on top of the sum-of-live
    // lower bound, never undershoot it.
    EXPECT_GE(dm.planned_bytes, dm.planned_peak_live_bytes);
    // The runtime stores exactly the buffers the static plan modelled, so
    // its high water can never exceed the plan's.
    EXPECT_LE(dm.measured_peak_bytes, dm.planned_peak_live_bytes);
    // ...and the analytical model (weights + in-flight activations +
    // working set) upper-bounds the sharded runtime footprint.
    EXPECT_LE(dm.measured_peak_bytes, dm.modeled_bytes);
    EXPECT_GT(dm.oracle_peak_bytes, 0);
  }
  EXPECT_EQ(seen.size(), 4u) << "duplicate (stage, rank) entries";

  ASSERT_FALSE(result->stage_timings.empty());
  for (const StageTiming& t : result->stage_timings) {
    EXPECT_GT(t.num_devices, 0);
    EXPECT_GT(t.compute_seconds(), 0.0) << "stage " << t.stage;
  }
}

TEST(ExecMemory, GptMeasuredWithinPlanAndModel) {
  GptConfig config;
  config.hidden = 32;
  config.num_layers = 2;
  config.num_heads = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 64;
  Graph graph = BuildGpt(config);
  CheckMemoryAccounting(graph, 3);
}

TEST(ExecMemory, MoeMeasuredWithinPlanAndModel) {
  MoeConfig config;
  config.hidden = 16;
  config.num_layers = 2;
  config.num_heads = 2;
  config.num_experts = 2;
  config.ffn_mult = 2;
  config.microbatch = 2;
  config.seq_len = 8;
  config.vocab = 32;
  Graph graph = BuildMoe(config);
  CheckMemoryAccounting(graph, 2);
}

TEST(ExecMemory, WideResNetMeasuredWithinPlanAndModel) {
  WideResNetConfig config;
  config.microbatch = 1;
  config.base_channels = 8;
  config.width_factor = 1;
  config.num_classes = 16;
  Graph graph = BuildWideResNet(config);
  CheckMemoryAccounting(graph, 2);
}

}  // namespace
}  // namespace exec
}  // namespace alpa
