// GPT training across a node: Alpa's automatic plan versus the
// Megatron-LM-style manual plan (7.1).
//
// Builds the GPT-1.3B configuration of Table 5, compiles it with both
// systems for one 8-GPU node, and compares simulated training throughput.
#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/models/gpt.h"

int main() {
  using namespace alpa;

  GptConfig model;
  model.hidden = 2048;
  model.num_layers = 24;
  model.num_heads = 32;
  model.microbatch = 8;
  std::printf("GPT-1.3B: %.2fB parameters, %d transformer layers\n",
              static_cast<double>(model.NumParams()) / 1e9,
              static_cast<int>(model.num_layers));

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const int num_microbatches = 32;  // Gradient accumulation steps.

  const BaselineResult alpa = RunAlpa(BuildGpt(model), cluster, num_microbatches, 12);
  const BaselineResult megatron = RunMegatron(BuildGpt(model), cluster, num_microbatches, 12);
  const BaselineResult intra = RunIntraOnly(BuildGpt(model), cluster, num_microbatches);

  std::printf("\n%-14s %12s %10s %10s\n", "system", "latency", "PFLOPS", "peak mem");
  for (const BaselineResult* r : {&alpa, &megatron, &intra}) {
    if (r->stats.ok()) {
      std::printf("%-14s %10.3f s %10.3f %7.1f GB\n", r->name.c_str(), r->stats->latency,
                  r->stats->pflops, r->stats->peak_memory_bytes / 1e9);
    } else {
      std::printf("%-14s %s\n", r->name.c_str(), r->stats.status().ToString().c_str());
    }
  }
  return alpa.stats.ok() ? 0 : 1;
}
