// GPT training across a node: Alpa's automatic plan versus the
// Megatron-LM-style manual plan (7.1).
//
// Builds the GPT-1.3B configuration of Table 5, compiles it with both
// systems for one 8-GPU node, and compares simulated training throughput.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/baselines/baselines.h"
#include "src/models/gpt.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

int main(int argc, char** argv) {
  using namespace alpa;

  // Optional: `--server SOCKET` compiles the Alpa plan on an alpa_serve
  // daemon; the manual baselines always compile in-process.
  std::string server;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server = argv[i + 1];
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      server = argv[i] + 9;
    }
  }

  GptConfig model;
  model.hidden = 2048;
  model.num_layers = 24;
  model.num_heads = 32;
  model.microbatch = 8;
  std::printf("GPT-1.3B: %.2fB parameters, %d transformer layers\n",
              static_cast<double>(model.NumParams()) / 1e9,
              static_cast<int>(model.num_layers));

  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 8);
  const int num_microbatches = 32;  // Gradient accumulation steps.

  std::unique_ptr<serve::PlanService> service;
  if (server.empty()) {
    service = std::make_unique<serve::InProcessPlanService>();
  } else {
    service = std::make_unique<serve::RemotePlanService>(server);
  }
  serve::PlanRequest request;
  request.graph = BuildGpt(model);
  request.cluster = cluster;
  request.options.num_microbatches = num_microbatches;
  request.options.target_layers = 12;
  const BaselineResult alpa{"alpa", service->CompileAndSimulate(request)};
  const BaselineResult megatron = RunMegatron(BuildGpt(model), cluster, num_microbatches, 12);
  const BaselineResult intra = RunIntraOnly(BuildGpt(model), cluster, num_microbatches);

  std::printf("\n%-14s %12s %10s %10s\n", "system", "latency", "PFLOPS", "peak mem");
  for (const BaselineResult* r : {&alpa, &megatron, &intra}) {
    if (r->stats.ok()) {
      std::printf("%-14s %10.3f s %10.3f %7.1f GB\n", r->name.c_str(), r->stats->latency,
                  r->stats->pflops, r->stats->peak_memory_bytes / 1e9);
    } else {
      std::printf("%-14s %s\n", r->name.c_str(), r->stats.status().ToString().c_str());
    }
  }
  return alpa.stats.ok() ? 0 : 1;
}
