// Mixture-of-Experts across nodes: Alpa versus DeepSpeed-style expert
// parallelism (7.1).
//
// DeepSpeed's hand-tuned MoE plan (expert parallelism + ZeRO) is pure
// intra-operator parallelism; its all-to-alls and gradient all-reduces
// cross the slow 25 Gbps links when the model spans nodes. Alpa instead
// pipelines across nodes and keeps the heavy collectives on NVLink.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/baselines/baselines.h"
#include "src/models/moe.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

int main(int argc, char** argv) {
  using namespace alpa;

  // Optional: `--server SOCKET` compiles the Alpa plans on an alpa_serve
  // daemon; the DeepSpeed baseline always compiles in-process.
  std::string server;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server = argv[i + 1];
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      server = argv[i] + 9;
    }
  }
  std::unique_ptr<serve::PlanService> service;
  if (server.empty()) {
    service = std::make_unique<serve::InProcessPlanService>();
  } else {
    service = std::make_unique<serve::RemotePlanService>(server);
  }

  MoeConfig model;
  model.hidden = 1024;
  model.num_layers = 16;
  model.num_heads = 16;
  model.num_experts = 16;
  model.microbatch = 8;
  std::printf("GShard MoE: %.2fB parameters, %d experts\n",
              static_cast<double>(model.NumParams()) / 1e9,
              static_cast<int>(model.num_experts));

  const int num_microbatches = 32;
  for (int hosts : {1, 2}) {
    const ClusterSpec cluster = ClusterSpec::AwsP3(hosts, 8);
    std::printf("\n--- %d node(s), %d GPUs ---\n", hosts, cluster.num_devices());
    serve::PlanRequest request;
    request.graph = BuildMoe(model);
    request.cluster = cluster;
    request.options.num_microbatches = num_microbatches;
    request.options.target_layers = 16;
    const BaselineResult alpa{"alpa", service->CompileAndSimulate(request)};
    const BaselineResult deepspeed = RunDeepSpeedMoe(BuildMoe(model), cluster, num_microbatches);
    for (const BaselineResult* r : {&alpa, &deepspeed}) {
      if (r->stats.ok()) {
        std::printf("%-12s latency %8.3f s   %6.3f PFLOPS\n", r->name.c_str(),
                    r->stats->latency, r->stats->pflops);
      } else {
        std::printf("%-12s %s\n", r->name.c_str(), r->stats.status().ToString().c_str());
      }
    }
    if (alpa.stats.ok() && deepspeed.stats.ok()) {
      std::printf("alpa speedup: %.2fx\n", deepspeed.stats->latency / alpa.stats->latency);
    }
  }
  return 0;
}
