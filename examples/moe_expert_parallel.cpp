// Mixture-of-Experts across nodes: Alpa versus DeepSpeed-style expert
// parallelism (7.1).
//
// DeepSpeed's hand-tuned MoE plan (expert parallelism + ZeRO) is pure
// intra-operator parallelism; its all-to-alls and gradient all-reduces
// cross the slow 25 Gbps links when the model spans nodes. Alpa instead
// pipelines across nodes and keeps the heavy collectives on NVLink.
#include <cstdio>

#include "src/baselines/baselines.h"
#include "src/models/moe.h"

int main() {
  using namespace alpa;

  MoeConfig model;
  model.hidden = 1024;
  model.num_layers = 16;
  model.num_heads = 16;
  model.num_experts = 16;
  model.microbatch = 8;
  std::printf("GShard MoE: %.2fB parameters, %d experts\n",
              static_cast<double>(model.NumParams()) / 1e9,
              static_cast<int>(model.num_experts));

  const int num_microbatches = 32;
  for (int hosts : {1, 2}) {
    const ClusterSpec cluster = ClusterSpec::AwsP3(hosts, 8);
    std::printf("\n--- %d node(s), %d GPUs ---\n", hosts, cluster.num_devices());
    const BaselineResult alpa = RunAlpa(BuildMoe(model), cluster, num_microbatches, 16);
    const BaselineResult deepspeed = RunDeepSpeedMoe(BuildMoe(model), cluster, num_microbatches);
    for (const BaselineResult* r : {&alpa, &deepspeed}) {
      if (r->stats.ok()) {
        std::printf("%-12s latency %8.3f s   %6.3f PFLOPS\n", r->name.c_str(),
                    r->stats->latency, r->stats->pflops);
      } else {
        std::printf("%-12s %s\n", r->name.c_str(), r->stats.status().ToString().c_str());
      }
    }
    if (alpa.stats.ok() && deepspeed.stats.ok()) {
      std::printf("alpa speedup: %.2fx\n", deepspeed.stats->latency / alpa.stats->latency);
    }
  }
  return 0;
}
