// Wide-ResNet: automatic parallelization of a heterogeneous model (7.6).
//
// Activation sizes shrink and weight sizes inflate along a ResNet, so no
// single manual strategy fits all layers. This example compiles the 1B
// Wide-ResNet of Table 7 on 4 GPUs and prints the per-stage plan plus the
// sharding specs Alpa chose for each convolution (the Fig. 13/14 case
// study).
#include <cstdio>

#include "src/core/api.h"
#include "src/core/visualize.h"
#include "src/models/wide_resnet.h"

int main() {
  using namespace alpa;

  WideResNetConfig model;
  model.num_layers = 50;
  model.base_channels = 320;
  model.width_factor = 2;
  model.microbatch = 32;
  std::printf("Wide-ResNet-50: %.2fB parameters (fp32)\n",
              static_cast<double>(model.NumParams()) / 1e9);

  Graph graph = BuildWideResNet(model);
  const ClusterSpec cluster = ClusterSpec::AwsP3(1, 4);
  ParallelizeOptions options;
  options.num_microbatches = 24;
  options.inter.target_layers = 8;
  ParallelPlan plan;
  const ExecutionStats stats = CompileAndSimulate(graph, cluster, options, &plan);
  if (!stats.feasible) {
    std::printf("infeasible\n");
    return 1;
  }

  std::printf("\nexecution: %s\n\n", stats.ToString().c_str());
  std::printf("%s\n", RenderPlanSummary(plan.pipeline).c_str());
  std::printf("%s", RenderPipelineTimeline(plan.sim_input, 96).c_str());
  return 0;
}
