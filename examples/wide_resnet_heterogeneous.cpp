// Wide-ResNet: automatic parallelization of a heterogeneous model (7.6).
//
// Activation sizes shrink and weight sizes inflate along a ResNet, so no
// single manual strategy fits all layers. This example compiles the 1B
// Wide-ResNet of Table 7 on 4 GPUs and prints the per-stage plan plus the
// sharding specs Alpa chose for each convolution (the Fig. 13/14 case
// study).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/api.h"
#include "src/core/visualize.h"
#include "src/models/wide_resnet.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

int main(int argc, char** argv) {
  using namespace alpa;

  // Optional: `--trace out.json` for a Chrome/Perfetto compile+execute
  // trace; `--server SOCKET` compiles on an alpa_serve daemon.
  std::string trace_path;
  std::string server;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server = argv[i + 1];
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      server = argv[i] + 9;
    }
  }

  WideResNetConfig model;
  model.num_layers = 50;
  model.base_channels = 320;
  model.width_factor = 2;
  model.microbatch = 32;
  std::printf("Wide-ResNet-50: %.2fB parameters (fp32)\n",
              static_cast<double>(model.NumParams()) / 1e9);

  std::unique_ptr<serve::PlanService> service;
  if (server.empty()) {
    service = std::make_unique<serve::InProcessPlanService>();
  } else {
    service = std::make_unique<serve::RemotePlanService>(server);
  }
  serve::PlanRequest request;
  request.graph = BuildWideResNet(model);
  request.cluster = ClusterSpec::AwsP3(1, 4);
  request.options.num_microbatches = 24;
  request.options.target_layers = 8;
  request.options.trace_path = trace_path;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = service->CompileAndSimulate(request, &plan);
  if (!stats.ok()) {
    std::printf("%s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("\nexecution: %s\n\n", stats->ToString().c_str());
  std::printf("%s\n", RenderPlanSummary(plan.pipeline).c_str());
  std::printf("%s", RenderPipelineTimeline(plan.sim_input, 96).c_str());
  return 0;
}
