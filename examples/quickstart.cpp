// Quickstart: automatic parallelization of a 2-layer MLP (the paper's
// running example, Figs. 2 and 4).
//
// The C++ analogue of
//     @parallelize
//     def train_step(state, batch): ...
// is: build the training graph, hand a PlanRequest to a PlanService, and
// execute the returned plan (here: on the simulated cluster). The same
// request compiles in this process by default, or on an alpa_serve daemon
// with `--server /tmp/alpa.sock` — nothing else changes. (The free
// functions in src/core/api.h remain as one-shot shims over the
// in-process service.)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/api.h"
#include "src/models/mlp.h"
#include "src/serve/client.h"
#include "src/serve/service.h"

int main(int argc, char** argv) {
  using namespace alpa;

  // Optional: `--trace out.json` writes a Chrome/Perfetto trace of the
  // compilation passes and the simulated pipeline execution (in-process
  // only); `--server SOCKET` compiles on an alpa_serve daemon instead.
  std::string trace_path;
  std::string server;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--server") == 0 && i + 1 < argc) {
      server = argv[i + 1];
    } else if (std::strncmp(argv[i], "--server=", 9) == 0) {
      server = argv[i] + 9;
    }
  }

  // 1. Model: a 2-hidden-layer MLP with MSE loss; BuildMlp also appends the
  //    backward pass and the optimizer update (the traced train_step).
  MlpConfig model;
  model.batch = 1024;
  model.input_dim = 2048;
  model.hidden_dims = {8192, 8192};
  model.output_dim = 2048;
  Graph graph = BuildMlp(model);
  std::printf("train_step graph: %d ops, %.2f GFLOP per microbatch\n", graph.size(),
              graph.TotalFlops() / 1e9);

  // 2. Cluster: one AWS p3.16xlarge node with 8 V100s.
  const ClusterSpec cluster = ClusterSpec::AwsP3(/*num_hosts=*/1, /*devices_per_host=*/8);
  std::printf("cluster: %s\n", cluster.ToString().c_str());

  // 3. Parallelize through the PlanService: the inter-op DP slices the
  //    model into pipeline stages and the cluster into meshes; the
  //    intra-op ILP picks a sharding for every operator of every stage.
  std::unique_ptr<serve::PlanService> service;
  if (server.empty()) {
    service = std::make_unique<serve::InProcessPlanService>();
  } else {
    service = std::make_unique<serve::RemotePlanService>(server);
  }
  serve::PlanRequest request;
  request.graph = graph;
  request.cluster = cluster;
  request.options.num_microbatches = 8;
  request.options.target_layers = 3;
  request.options.trace_path = trace_path;
  ParallelPlan plan;
  const StatusOr<ExecutionStats> stats = service->CompileAndSimulate(request, &plan);
  if (!stats.ok()) {
    std::printf("parallelization failed (%s): %s\n", service->name().c_str(),
                stats.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the plan and the simulated execution.
  std::printf("\n%s\n", plan.pipeline.ToString().c_str());
  std::printf("execution: %s\n", stats->ToString().c_str());
  std::printf("compilation took %.2f s (%lld ILP solves)\n",
              plan.compile_stats.total_seconds,
              static_cast<long long>(plan.compile_stats.ilp_solves));
  if (!trace_path.empty()) {
    std::printf("trace written to %s (open in ui.perfetto.dev)\n", trace_path.c_str());
  }
  return 0;
}
