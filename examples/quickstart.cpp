// Quickstart: automatic parallelization of a 2-layer MLP (the paper's
// running example, Figs. 2 and 4).
//
// The C++ analogue of
//     @parallelize
//     def train_step(state, batch): ...
// is: build the training graph, call alpa::Parallelize against a cluster
// description, and execute the returned plan (here: on the simulated
// cluster).
#include <cstdio>

#include "src/core/api.h"
#include "src/models/mlp.h"

int main() {
  using namespace alpa;

  // 1. Model: a 2-hidden-layer MLP with MSE loss; BuildMlp also appends the
  //    backward pass and the optimizer update (the traced train_step).
  MlpConfig model;
  model.batch = 1024;
  model.input_dim = 2048;
  model.hidden_dims = {8192, 8192};
  model.output_dim = 2048;
  Graph graph = BuildMlp(model);
  std::printf("train_step graph: %d ops, %.2f GFLOP per microbatch\n", graph.size(),
              graph.TotalFlops() / 1e9);

  // 2. Cluster: one AWS p3.16xlarge node with 8 V100s.
  const ClusterSpec cluster = ClusterSpec::AwsP3(/*num_hosts=*/1, /*devices_per_host=*/8);
  std::printf("cluster: %s\n", cluster.ToString().c_str());

  // 3. Parallelize: the inter-op DP slices the model into pipeline stages
  //    and the cluster into meshes; the intra-op ILP picks a sharding for
  //    every operator of every stage.
  ParallelizeOptions options;
  options.num_microbatches = 8;
  options.inter.target_layers = 3;
  ParallelPlan plan;
  const ExecutionStats stats = CompileAndSimulate(graph, cluster, options, &plan);

  // 4. Inspect the plan and the simulated execution.
  std::printf("\n%s\n", plan.pipeline.ToString().c_str());
  std::printf("execution: %s\n", stats.ToString().c_str());
  std::printf("compilation took %.2f s (%lld ILP solves)\n",
              plan.compile_stats.total_seconds,
              static_cast<long long>(plan.compile_stats.ilp_solves));
  return stats.feasible ? 0 : 1;
}
